// p2pmanet_sim — run one P2P-over-MANET scenario end to end.
//
//   p2pmanet_sim [--config FILE.ini] [--trace FILE.tr] [--csv PREFIX]
//                [--seeds N] [--threads N] [--progress] [--telemetry]
//                [key=value ...]
//
// With --seeds N > 1 the scenario is repeated across seeds (paper
// methodology) and aggregated results are reported with 95% CIs;
// otherwise a single run is executed and per-node detail is printed.
// --trace writes an ns-2-style packet trace (single-run mode only).
// --csv writes <PREFIX>_curves.csv and <PREFIX>_ranks.csv for plotting.
// --progress logs each finished seed with wall time and events/sec;
// --telemetry prints the JSONL run manifest (docs/determinism.md) after
// the experiment.
#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/factory.hpp"
#include "net/network.hpp"
#include "scenario/experiment.hpp"
#include "scenario/run.hpp"
#include "scenario/telemetry.hpp"
#include "stats/table.hpp"
#include "trace/trace.hpp"
#include "util/config.hpp"

namespace {

using namespace p2p;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--config FILE.ini] [--trace FILE.tr] [--csv PREFIX]\n"
         "       [--seeds N] [--threads N] [--progress] [--telemetry]\n"
         "       [key=value ...]\n\n"
         "common keys: algorithm=basic|regular|random|hybrid num_nodes=50\n"
         "  duration_s=3600 seed=1 p2p_fraction=0.75 mobility=waypoint|\n"
         "  direction|gauss_markov routing_protocol=aodv|dsdv maxnconn=3 ...\n";
  return 2;
}

void print_single_run(scenario::SimulationRun& run,
                      const scenario::RunResult& result) {
  std::cout << "frames: " << result.frames_transmitted << " tx, "
            << result.frames_delivered << " delivered, " << result.frames_lost
            << " lost\n"
            << "energy: " << result.energy_consumed_j << " J total\n"
            << "routing control messages: " << result.routing_control_messages
            << "\n"
            << "events processed: " << result.events_processed << "\n";
  if (result.masters + result.slaves > 0) {
    std::cout << "hybrid roles: " << result.masters << " masters, "
              << result.slaves << " slaves\n";
  }
  if (result.churn_deaths > 0) {
    std::cout << "churn: " << result.churn_deaths << " node failures, "
              << result.churn_recoveries << " recoveries\n";
  }
  if (result.link_blackouts + result.loss_bursts > 0) {
    std::cout << "link faults: " << result.link_blackouts << " blackouts, "
              << result.loss_bursts << " loss bursts\n";
  }
  if (result.overlay_disrupted_s > 0.0 || result.orphaned_servents > 0) {
    std::cout << "overlay disruption: " << result.overlay_disrupted_s
              << " s, " << result.overlay_repairs << " repairs, "
              << result.orphaned_servents << " orphans\n";
  }
  if (result.invariant_violations > 0) {
    std::cout << "INVARIANT VIOLATIONS: " << result.invariant_violations
              << " (simulator bug — see docs/faults.md)\n";
  }
  std::cout << "overlay: " << result.overlay_final.edges << " edges, C="
            << result.overlay_final.clustering
            << ", L=" << result.overlay_final.path_length << ", "
            << result.overlay_final.components << " components\n\n";

  stats::Table per_node({"member", "node", "conns", "connect rx", "ping rx",
                         "query rx", "queries sent"});
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    const auto& servent = run.servent(i);
    per_node.add_row({std::to_string(i), std::to_string(servent.self()),
                      std::to_string(servent.connections().size()),
                      std::to_string(servent.counters().connect_received()),
                      std::to_string(servent.counters().ping_received()),
                      std::to_string(servent.counters().query_received()),
                      std::to_string(servent.queries_sent())});
  }
  per_node.print(std::cout);

  std::cout << "\nper-file search quality:\n";
  stats::Table per_file(
      {"rank", "requests", "answered %", "answers/req", "min dist"});
  for (std::size_t k = 0; k < result.per_file.size(); ++k) {
    const auto& f = result.per_file[k];
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", 100.0 * f.answered_fraction());
    std::string answered = buf;
    std::snprintf(buf, sizeof buf, "%.2f", f.answers_per_request());
    std::string answers = buf;
    std::snprintf(buf, sizeof buf, "%.2f", f.mean_min_physical());
    per_file.add_row({std::to_string(k + 1), std::to_string(f.requests),
                      answered, answers, buf});
  }
  per_file.print(std::cout);
}

bool write_experiment_csv(const scenario::ExperimentResult& result,
                          const std::string& prefix) {
  stats::Table curves({"rank", "connect_mean", "connect_ci95", "ping_mean",
                       "ping_ci95", "query_mean", "query_ci95"});
  for (std::size_t i = 0; i < result.connect_curve.points(); ++i) {
    curves.add_row_values(
        {static_cast<double>(i + 1), result.connect_curve.mean_at(i),
         result.connect_curve.ci95_at(i), result.ping_curve.mean_at(i),
         result.ping_curve.ci95_at(i), result.query_curve.mean_at(i),
         result.query_curve.ci95_at(i)});
  }
  stats::Table ranks({"file_rank", "answers_mean", "answers_ci95",
                      "distance_mean", "distance_ci95", "answered_frac"});
  for (std::size_t k = 0; k < result.ranks.size(); ++k) {
    const auto& r = result.ranks[k];
    ranks.add_row_values({static_cast<double>(k + 1),
                          r.answers_per_request.mean(),
                          r.answers_per_request.ci95_halfwidth(),
                          r.min_distance.mean(),
                          r.min_distance.ci95_halfwidth(),
                          r.answered_fraction.mean()});
  }
  return curves.write_csv(prefix + "_curves.csv") &&
         ranks.write_csv(prefix + "_ranks.csv");
}

}  // namespace

int main(int argc, char** argv) {
  util::Config config;
  std::string trace_path;
  std::string csv_prefix;
  std::size_t seeds = 1;
  std::size_t threads = 0;
  bool progress = false;
  bool telemetry = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") return usage(argv[0]);
    if (arg == "--config") {
      const char* path = next();
      if (path == nullptr) return usage(argv[0]);
      std::ifstream file(path);
      if (!file) {
        std::cerr << "cannot open config file: " << path << "\n";
        return 1;
      }
      std::stringstream buffer;
      buffer << file.rdbuf();
      std::string error;
      if (!config.parse_ini(buffer.str(), &error)) {
        std::cerr << path << ": " << error << "\n";
        return 1;
      }
      continue;
    }
    if (arg == "--trace") {
      const char* path = next();
      if (path == nullptr) return usage(argv[0]);
      trace_path = path;
      continue;
    }
    if (arg == "--csv") {
      const char* path = next();
      if (path == nullptr) return usage(argv[0]);
      csv_prefix = path;
      continue;
    }
    if (arg == "--seeds") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      char* end = nullptr;
      seeds = static_cast<std::size_t>(std::strtoul(n, &end, 10));
      if (end == n || *end != '\0' || seeds == 0) return usage(argv[0]);
      continue;
    }
    if (arg == "--threads") {
      const char* n = next();
      if (n == nullptr) return usage(argv[0]);
      char* end = nullptr;
      threads = static_cast<std::size_t>(std::strtoul(n, &end, 10));
      if (end == n || *end != '\0') return usage(argv[0]);
      continue;
    }
    if (arg == "--progress") {
      progress = true;
      continue;
    }
    if (arg == "--telemetry") {
      telemetry = true;
      continue;
    }
    std::string error;
    if (!config.parse_override(arg, &error)) {
      std::cerr << "bad argument '" << arg << "': " << error << "\n";
      return usage(argv[0]);
    }
  }

  scenario::Parameters params;
  if (const std::string error = params.apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    return 1;
  }

  std::cout << "p2pmanet_sim — " << params.summary() << "\n\n";

  if (seeds > 1) {
    scenario::RunTelemetry run_telemetry;
    std::atomic<std::size_t> completed{0};
    const auto on_run_done = [&](std::size_t seed_index, std::size_t total) {
      const std::size_t done = completed.fetch_add(1) + 1;
      if (progress) {
        // Telemetry slot `seed_index` is filled before this fires.
        const auto& t = run_telemetry.per_seed()[seed_index];
        std::ostringstream line;  // single write: lines from workers don't interleave
        line << "seed " << t.seed << " done (" << done << "/" << total
             << "): " << t.wall_seconds << " s, " << t.events_per_sec
             << " events/s, " << t.frames_tx << " frames tx\n";
        std::cerr << line.str();
      } else {
        std::cerr << "\rrun " << done << "/" << total << std::flush;
      }
    };
    const auto result =
        scenario::run_experiment(params, seeds, threads, on_run_done,
                                 &run_telemetry);
    if (!progress) std::cerr << "\n";
    std::cout << "aggregated over " << result.runs << " seeds:\n"
              << "  frames tx: " << result.frames_transmitted.mean() << " ± "
              << result.frames_transmitted.ci95_halfwidth() << "\n"
              << "  energy J: " << result.energy_consumed_j.mean() << " ± "
              << result.energy_consumed_j.ci95_halfwidth() << "\n"
              << "  overlay clustering: " << result.overlay_clustering.mean()
              << ", path length: " << result.overlay_path_length.mean()
              << "\n";
    if (telemetry) {
      std::cout << "\nrun manifest (JSONL):\n" << run_telemetry.to_jsonl();
    }
    if (!csv_prefix.empty() && !write_experiment_csv(result, csv_prefix)) {
      std::cerr << "failed to write CSVs with prefix " << csv_prefix << "\n";
      return 1;
    }
    return 0;
  }
  if (telemetry) {
    std::cerr << "--telemetry requires --seeds N > 1\n";
    return 2;
  }

  scenario::SimulationRun run(params);
  run.build();

  std::ofstream trace_file;
  std::unique_ptr<trace::Writer> writer;
  std::unique_ptr<trace::NetworkAdapter> adapter;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open trace file: " << trace_path << "\n";
      return 1;
    }
    writer = std::make_unique<trace::Writer>(trace_file);
    adapter = std::make_unique<trace::NetworkAdapter>(*writer);
    run.network().set_observer(adapter.get());
  }

  const auto result = run.run();
  print_single_run(run, result);
  if (!trace_path.empty()) {
    std::cout << "\npacket trace written to " << trace_path << "\n";
  }
  return 0;
}
