# Gnuplot script for the figure-bench CSV exports.
#
#   mkdir -p csv && P2P_BENCH_CSV_DIR=csv ./build/bench/fig07_connect_msgs_50
#   gnuplot -e "csvdir='csv'" plots/plot_figures.gp
#
# Produces PNGs mirroring the paper's Figures 7-12 ("nodes decreasingly
# ordered by # of received messages") and 5/6 (distance + answers vs rank).

if (!exists("csvdir")) csvdir = "csv"
set datafile separator ","
set terminal pngcairo size 900,600
set key top right
set grid

do for [fig in "Figure_7 Figure_8 Figure_9 Figure_10 Figure_11 Figure_12"] {
  infile = sprintf("%s/%s.csv", csvdir, fig)
  set output sprintf("%s/%s.png", csvdir, fig)
  set xlabel "Nodes - decreasingly ordered by received messages"
  set ylabel "Messages received"
  set title fig
  plot infile using 1:2 with lines lw 2 title "Basic", \
       infile using 1:4 with lines lw 2 title "Regular", \
       infile using 1:6 with lines lw 2 title "Random", \
       infile using 1:8 with lines lw 2 title "Hybrid"
}

do for [fig in "Figure_5 Figure_6"] {
  infile = sprintf("%s/%s.csv", csvdir, fig)
  set output sprintf("%s/%s_distance.png", csvdir, fig)
  set xlabel "Files (popularity rank)"
  set ylabel "Average minimum distance (hops)"
  set title sprintf("%s - distance to find the file", fig)
  plot infile using 1:2 with linespoints lw 2 title "Basic", \
       infile using 1:4 with linespoints lw 2 title "Regular", \
       infile using 1:6 with linespoints lw 2 title "Random", \
       infile using 1:8 with linespoints lw 2 title "Hybrid"

  set output sprintf("%s/%s_answers.png", csvdir, fig)
  set ylabel "Average number of answers per request"
  set title sprintf("%s - answers per file request", fig)
  plot infile using 1:3 with linespoints lw 2 title "Basic", \
       infile using 1:5 with linespoints lw 2 title "Regular", \
       infile using 1:7 with linespoints lw 2 title "Random", \
       infile using 1:9 with linespoints lw 2 title "Hybrid"
}
