// Quickstart: simulate a small P2P-over-MANET deployment with each of the
// four (re)configuration algorithms and print a comparison summary.
//
//   $ ./quickstart [key=value ...]
//
// e.g. ./quickstart num_nodes=100 duration_s=600 algorithm=random
//
// When an explicit `algorithm=` override is given only that algorithm
// runs; otherwise all four are compared.
#include <iostream>

#include "core/factory.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace p2p;

  util::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!config.parse_override(argv[i], &error)) {
      std::cerr << "bad argument '" << argv[i] << "': " << error << "\n";
      return 1;
    }
  }

  scenario::Parameters base;
  base.num_nodes = 50;
  base.duration_s = 900.0;  // keep the quickstart quick
  if (const std::string error = base.apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    return 1;
  }

  std::vector<core::AlgorithmKind> algorithms;
  if (config.contains("algorithm")) {
    algorithms.push_back(base.algorithm);
  } else {
    algorithms = {core::AlgorithmKind::kBasic, core::AlgorithmKind::kRegular,
                  core::AlgorithmKind::kRandom, core::AlgorithmKind::kHybrid};
  }

  std::cout << "p2pmanet quickstart — " << base.num_nodes << " nodes, "
            << base.num_members() << " p2p members, " << base.duration_s
            << " s simulated\n\n";

  stats::Table table({"algorithm", "conns/node", "connect rx/node",
                      "ping rx/node", "query rx/node", "answers/req",
                      "overlay CC", "overlay L", "frames tx"});

  for (const auto kind : algorithms) {
    scenario::Parameters params = base;
    params.algorithm = kind;
    scenario::SimulationRun run(params);
    const scenario::RunResult result = run.run();

    double conns = 0.0;
    for (std::size_t i = 0; i < run.member_count(); ++i) {
      conns += static_cast<double>(run.servent(i).connections().size());
    }
    conns /= static_cast<double>(run.member_count());

    double connect_rx = 0.0, ping_rx = 0.0, query_rx = 0.0;
    for (const auto& c : result.counters) {
      connect_rx += static_cast<double>(c.connect_received());
      ping_rx += static_cast<double>(c.ping_received());
      query_rx += static_cast<double>(c.query_received());
    }
    const auto members = static_cast<double>(result.num_members);
    connect_rx /= members;
    ping_rx /= members;
    query_rx /= members;

    double answers = 0.0;
    std::uint64_t requests = 0;
    for (const auto& f : result.per_file) {
      answers += static_cast<double>(f.answers_total);
      requests += f.requests;
    }
    const double answers_per_req =
        requests == 0 ? 0.0 : answers / static_cast<double>(requests);

    std::vector<std::string> row;
    row.push_back(core::algorithm_name(kind));
    const auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", v);
      return std::string(buf);
    };
    row.push_back(fmt(conns));
    row.push_back(fmt(connect_rx));
    row.push_back(fmt(ping_rx));
    row.push_back(fmt(query_rx));
    row.push_back(fmt(answers_per_req));
    row.push_back(fmt(result.overlay_final.clustering));
    row.push_back(fmt(result.overlay_final.path_length));
    row.push_back(std::to_string(result.frames_transmitted));
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\n'connect/ping/query rx' are messages received per p2p "
               "member —\nthe quantities Figures 7-12 of the paper plot.\n";
  return 0;
}
