// Small-world laboratory (paper §6.1.2 and the §7.4 discussion of why the
// Random algorithm's small-world effect was hard to observe at n=50/150).
//
// Compares the overlay graphs produced by Regular and Random on a static,
// dense network where the prerequisite n >> k actually holds, and prints
// clustering coefficient / characteristic path length side by side with
// the regular-lattice and random-graph reference values the paper quotes.
#include <iostream>

#include "graph/metrics.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace p2p;

  util::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!config.parse_override(argv[i], &error)) {
      std::cerr << "bad argument '" << argv[i] << "': " << error << "\n";
      return 1;
    }
  }

  scenario::Parameters base;
  base.num_nodes = 250;        // n >> k = 3
  base.p2p_fraction = 1.0;
  base.area_width = 160.0;     // dense enough to be connected
  base.area_height = 160.0;
  base.mobile = false;         // isolate topology effects from churn
  base.duration_s = 900.0;
  base.p2p.enable_queries = false;  // overlay formation only
  if (const std::string error = base.apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    return 1;
  }

  std::cout << "Small-world lab — " << base.num_nodes
            << " static nodes, overlay formation only\n\n";

  stats::Table table({"overlay", "edges", "mean k", "clustering C",
                      "path length L", "components", "sigma"});

  const auto add_graph_row = [&](const char* name,
                                 const graph::SmallWorldMetrics& m) {
    char buf[64];
    std::vector<std::string> row;
    row.emplace_back(name);
    row.push_back(std::to_string(m.edges));
    std::snprintf(buf, sizeof buf, "%.2f", m.mean_degree);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", m.clustering);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.2f", m.path_length);
    row.emplace_back(buf);
    row.push_back(std::to_string(m.components));
    std::snprintf(buf, sizeof buf, "%.2f", m.smallworld_index);
    row.emplace_back(buf);
    table.add_row(std::move(row));
  };

  for (const auto kind :
       {core::AlgorithmKind::kRegular, core::AlgorithmKind::kRandom}) {
    scenario::Parameters params = base;
    params.algorithm = kind;
    scenario::SimulationRun run(params);
    const scenario::RunResult result = run.run();
    add_graph_row(core::algorithm_name(kind), result.overlay_final);
  }

  table.print(std::cout);

  const auto n = static_cast<std::size_t>(
      static_cast<double>(base.num_nodes) * base.p2p_fraction);
  const std::size_t k = 3;
  std::cout << "\nReference values for (n=" << n << ", k=" << k << "):\n"
            << "  regular lattice path length n/2k  = "
            << graph::regular_lattice_path_length(n, k) << "\n"
            << "  random graph path length ln n/ln k = "
            << graph::random_graph_path_length(n, k) << "\n"
            << "\nThe Random overlay's long links should pull L toward the "
               "random-graph value\nwhile clustering stays near Regular's — "
               "the Watts-Strogatz small-world signature\nthe paper aimed "
               "for (§6.1.4).\n";
  return 0;
}
