// File sharing at a convention (paper §4: "conventions or meetings, where
// people, for comfortableness, wish quickly exchanging of information").
//
// 150 attendees with PDAs/notebooks in a 100x100 m hall, 75% running the
// file-sharing app. We deploy the Random algorithm, let the overlay form,
// and report how well content of each popularity rank can be found — the
// paper's Figure 6 experiment, narrated for one run.
#include <iostream>

#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace p2p;

  util::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!config.parse_override(argv[i], &error)) {
      std::cerr << "bad argument '" << argv[i] << "': " << error << "\n";
      return 1;
    }
  }

  scenario::Parameters params;
  params.num_nodes = 150;
  params.algorithm = core::AlgorithmKind::kRandom;
  params.duration_s = 1800.0;
  if (const std::string error = params.apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    return 1;
  }

  std::cout << "Convention-hall file sharing — " << params.summary() << "\n\n";

  scenario::SimulationRun run(params);
  const scenario::RunResult result = run.run();

  std::cout << "Overlay after " << params.duration_s << " s:\n"
            << "  members: " << result.num_members
            << ", overlay edges: " << result.overlay_final.edges
            << ", components: " << result.overlay_final.components
            << " (largest " << result.overlay_final.largest_component << ")\n"
            << "  clustering coefficient: " << result.overlay_final.clustering
            << ", characteristic path length: "
            << result.overlay_final.path_length << "\n\n";

  stats::Table table({"file rank", "placement copies", "requests",
                      "answered %", "answers/request", "avg min distance"});
  for (std::uint32_t rank = 1; rank <= params.num_files; ++rank) {
    const auto& f = result.per_file[rank - 1];
    char buf[160];
    std::snprintf(buf, sizeof buf, "%u|%u|%llu|%.1f|%.2f|%.2f", rank,
                  run.placement().copies_of(rank),
                  static_cast<unsigned long long>(f.requests),
                  100.0 * f.answered_fraction(), f.answers_per_request(),
                  f.mean_min_physical());
    std::vector<std::string> cells;
    std::string cur;
    for (const char* p = buf;; ++p) {
      if (*p == '|' || *p == '\0') {
        cells.push_back(cur);
        cur.clear();
        if (*p == '\0') break;
      } else {
        cur += *p;
      }
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::cout << "\nZipf placement means popular files have many copies "
               "nearby: answers decay\nwith rank while the distance to the "
               "nearest copy creeps up — Figure 6's shape.\n";
  return 0;
}
