// Churn survival: run the four (re)configuration algorithms through the
// deterministic fault injector (docs/faults.md) and compare how each
// overlay survives node churn, link blackouts, and loss bursts.
//
//   $ ./churn_survival [key=value ...]
//
// e.g. ./churn_survival churn_rate=4 mean_downtime=120
//      ./churn_survival algorithm=regular seed=7 loss_burst_rate=12
//
// The invariant checker runs throughout; a non-zero violation count
// means a simulator bug, never a result.
#include <iostream>

#include "core/factory.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace p2p;

  util::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!config.parse_override(argv[i], &error)) {
      std::cerr << "bad argument '" << argv[i] << "': " << error << "\n";
      return 1;
    }
  }

  scenario::Parameters base;
  base.num_nodes = 50;
  base.duration_s = 900.0;
  base.fault.churn_rate_per_hour = 12.0;  // each node dies ~3x per run
  base.fault.mean_downtime_s = 60.0;
  base.fault.blackout_rate_per_hour = 20.0;
  base.fault.burst_rate_per_hour = 6.0;
  base.invariant_check_interval_s = 30.0;
  if (const std::string error = base.apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    return 1;
  }

  std::vector<core::AlgorithmKind> algorithms;
  if (config.contains("algorithm")) {
    algorithms.push_back(base.algorithm);
  } else {
    algorithms = {core::AlgorithmKind::kBasic, core::AlgorithmKind::kRegular,
                  core::AlgorithmKind::kRandom, core::AlgorithmKind::kHybrid};
  }

  std::cout << "p2pmanet churn survival — " << base.num_nodes << " nodes, "
            << base.num_members() << " p2p members, " << base.duration_s
            << " s, churn " << base.fault.churn_rate_per_hour
            << "/node/h, downtime " << base.fault.mean_downtime_s << " s\n\n";

  stats::Table table({"algorithm", "deaths", "reborn", "blackouts", "bursts",
                      "success %", "disrupted s", "repairs", "orphans",
                      "violations"});
  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };
  for (const auto kind : algorithms) {
    scenario::Parameters params = base;
    params.algorithm = kind;
    scenario::SimulationRun run(params);
    const scenario::RunResult result = run.run();
    table.add_row({core::algorithm_name(kind),
                   std::to_string(result.churn_deaths),
                   std::to_string(result.churn_recoveries),
                   std::to_string(result.link_blackouts),
                   std::to_string(result.loss_bursts),
                   fmt(100.0 * result.query_success_rate()),
                   fmt(result.overlay_disrupted_s),
                   std::to_string(result.overlay_repairs),
                   std::to_string(result.orphaned_servents),
                   std::to_string(result.invariant_violations)});
  }
  table.print(std::cout);
  std::cout << "\n'disrupted' counts time some live member could not reach "
               "another over the\nreference graph; 'orphans' are live members "
               "with zero references at the end.\nSame seed + same fault "
               "knobs => the same deaths at the same times, for any\nthread "
               "count (docs/faults.md).\n";
  return 0;
}
