// Emergency operation with heterogeneous devices (paper §4 "emergency
// operations"; §6.2 motivates Hybrid for networks of unequal devices).
//
// A rescue team spreads over the operation area: 20% carry strong
// notebook-class devices, 80% weak handhelds. The Hybrid algorithm should
// put the burden on the strong devices: they become masters, weak devices
// attach as slaves, and ping/query load concentrates on masters.
#include <algorithm>
#include <iostream>

#include "core/hybrid.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace p2p;

  util::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!config.parse_override(argv[i], &error)) {
      std::cerr << "bad argument '" << argv[i] << "': " << error << "\n";
      return 1;
    }
  }

  scenario::Parameters params;
  params.num_nodes = 60;
  params.algorithm = core::AlgorithmKind::kHybrid;
  params.qualifier_dist = scenario::QualifierDist::kTwoClass;
  params.duration_s = 1800.0;
  params.max_speed = 2.0;  // rescuers move faster than conference-goers
  if (const std::string error = params.apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    return 1;
  }

  std::cout << "Rescue operation (heterogeneous, Hybrid) — "
            << params.summary() << "\n\n";

  scenario::SimulationRun run(params);
  const scenario::RunResult result = run.run();

  std::cout << "Role census at t=" << params.duration_s << " s: "
            << result.masters << " masters, " << result.slaves
            << " slaves, "
            << (result.num_members - result.masters - result.slaves)
            << " unattached\n\n";

  // Load distribution: strong devices (masters) should head the sorted
  // received-message curve.
  struct Row {
    net::NodeId node;
    const char* role;
    std::uint32_t qualifier;
    std::uint64_t pings;
    std::uint64_t queries;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < run.member_count(); ++i) {
    const auto& servent =
        static_cast<const core::HybridServent&>(run.servent(i));
    const char* role = "initial";
    if (servent.state() == core::HybridState::kMaster) role = "master";
    if (servent.state() == core::HybridState::kSlave) role = "slave";
    rows.push_back({servent.self(), role, servent.qualifier(),
                    servent.counters().ping_received(),
                    servent.counters().query_received()});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.pings + a.queries > b.pings + b.queries;
  });

  stats::Table table({"node", "role", "qualifier", "pings rx", "queries rx"});
  const std::size_t top = std::min<std::size_t>(rows.size(), 12);
  for (std::size_t i = 0; i < top; ++i) {
    table.add_row({std::to_string(rows[i].node), rows[i].role,
                   std::to_string(rows[i].qualifier),
                   std::to_string(rows[i].pings),
                   std::to_string(rows[i].queries)});
  }
  table.print(std::cout);

  std::cout << "\n(top " << top << " of " << rows.size()
            << " members by received load — masters, i.e. high-qualifier "
               "devices, should dominate;\nthe paper's Figures 11/12 show "
               "the same head-heavy curve for Hybrid)\n";
  return 0;
}
