// Figure 8 (IPDPS'03): connect messages received per node — 150 nodes.
#include "fig_curve_common.hpp"
int main(int argc, char** argv) {
  return bench::run_curve_figure("Figure 8", 150, bench::CurveMetric::kConnect,
                                 argc, argv);
}
