// Serving-daemon front-end throughput: requests/s against a warm cache.
//
// Drives the real protocol stack (Session -> Scheduler -> seed cache) in
// process, with the compute path warmed out of the way first — so the
// measured loop is exactly the daemon's steady state for repeated
// identical experiments: JSON parse, config validation, canonical-key
// hashing, checksummed cache read, response assembly. Record format and
// flags match the other perf binaries (perf_record.hpp); tools/bench.sh
// appends the record to BENCH_serve.json.
#include <string>

#include "perf_record.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/session.hpp"

namespace {

using namespace p2p;

int run(const bench::Options& opt) {
  const int requests = opt.smoke ? 100 : 2000;
  const std::string request_line =
      "{\"config\":{\"num_nodes\":20,\"duration_s\":120,"
      "\"overlay_sample_interval_s\":50},\"seeds\":[1,2,3,4]}";

  serve::Metrics metrics;
  serve::Scheduler scheduler(/*workers=*/1, /*max_queue=*/64, &metrics);
  std::uint64_t lines_out = 0;
  serve::Session session(&scheduler, &metrics, serve::SessionLimits{},
                         [&lines_out](std::string_view) {
                           ++lines_out;
                           return true;
                         });

  // Warm: the four seeds compute once and land in the cache; every timed
  // request below is pure serving.
  if (!session.handle_line(request_line)) return 1;

  double best = 0.0;
  for (int rep = 0; rep < opt.repeat; ++rep) {
    const auto start = bench::Clock::now();
    for (int i = 0; i < requests; ++i) {
      if (!session.handle_line(request_line)) return 1;
    }
    const double wall = bench::seconds_since(start);
    if (best == 0.0 || wall < best) best = wall;
  }

  bench::Record rec;
  rec.bench = "serve_warm_cache";
  rec.wall_s = best;
  rec.ops = static_cast<std::uint64_t>(requests);
  rec.ops_name = "requests";
  rec.extras.push_back(
      {"seed_lines", metrics.counter("seed_results").value(), false});
  rec.extras.push_back(
      {"cache_hits", metrics.counter("cache_hits").value(), false});
  bench::emit(rec, opt);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt =
      bench::parse_options(argc, argv, /*allow_suite=*/false);
  return run(opt);
}
