// Future-work experiment (paper §8: "effects of wireless coverage"):
// sweep the radio range on the fixed 50-node scenario — and, at the
// paper's 10 m range, toggle the gray-zone soft cell edge to see what a
// unit-disk model hides.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.algorithm = core::AlgorithmKind::kRegular;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Coverage sweep", "radio range vs search quality (Regular)",
               base, seeds);

  stats::Table table({"range m", "gray zone", "answers/req (rank1)",
                      "answered % (rank1)", "connect rx/node", "frames tx"});
  const auto run_row = [&](double range, double gray) {
    scenario::Parameters params = base;
    params.radio_range = range;
    params.mac.gray_zone_fraction = gray;
    const auto result = scenario::run_experiment_cached(params, seeds, 0, {});
    const auto& rank1 = result.ranks[0];
    double connect_total = 0.0;
    for (std::size_t i = 0; i < result.connect_curve.points(); ++i) {
      connect_total += result.connect_curve.mean_at(i);
    }
    const auto members = static_cast<double>(
        std::max<std::size_t>(1, result.connect_curve.points()));
    table.add_row({fmt(range, 0), gray > 0.0 ? fmt(gray, 2) : "off",
                   fmt(rank1.answers_per_request.count() > 0
                           ? rank1.answers_per_request.mean()
                           : 0.0),
                   fmt(rank1.answered_fraction.count() > 0
                           ? 100.0 * rank1.answered_fraction.mean()
                           : 0.0,
                       1),
                   fmt(connect_total / members),
                   fmt(result.frames_transmitted.mean(), 0)});
  };

  for (const double range : {5.0, 8.0, 10.0, 13.0, 16.0}) {
    run_row(range, 0.0);
  }
  run_row(10.0, 0.3);  // the paper's range with a 30% soft edge

  table.print(std::cout);
  std::cout << "\nexpected: coverage drives everything — below ~8 m the "
               "50-node network shatters;\nthe gray zone at 10 m behaves "
               "like a slightly smaller effective range with\nflaky edge "
               "links (more maintenance churn per useful connection).\n";
  return 0;
}
