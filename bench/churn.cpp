// Future-work experiment (paper §8): "effects of ... energy ... and
// death/birth rate of nodes" — give every node a finite battery and watch
// the network die under each algorithm's maintenance load.
//
// The paper's energy argument (§7.4): "nodes communicating through the
// Basic algorithm will have to spend more battery to sustain the network
// ... may cause many nodes to go down, making it necessary to reorganize
// the network, which in turn causes the remaining nodes to spend even
// more energy." This bench quantifies that spiral.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  // A battery sized so the improved algorithms' maintenance load lasts
  // the hour but Basic's broadcast storms do not (~1 J ≈ the Regular
  // algorithm's measured per-node hourly consumption on this scenario).
  base.energy.battery_j = 1.2;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Churn", "finite batteries: network lifetime per algorithm",
               base, seeds);

  stats::Table table({"algorithm", "energy J (all nodes)", "frames tx",
                      "answers/req (rank1)", "answered % (rank1)"});
  for (const auto kind : kAllAlgorithms) {
    scenario::Parameters params = base;
    params.algorithm = kind;
    const auto result = scenario::run_experiment_cached(params, seeds, 0, {});
    const auto& rank1 = result.ranks[0];
    table.add_row({core::algorithm_name(kind),
                   fmt(result.energy_consumed_j.mean(), 3),
                   fmt(result.frames_transmitted.mean(), 0),
                   fmt(rank1.answers_per_request.count() > 0
                           ? rank1.answers_per_request.mean()
                           : 0.0),
                   fmt(rank1.answered_fraction.count() > 0
                           ? 100.0 * rank1.answered_fraction.mean()
                           : 0.0,
                       1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: Basic burns ~1.5x the energy of Regular and "
               "hits the battery cap first,\nso the 2x search-quality lead "
               "it enjoys with infinite energy (Fig 5) evaporates —\nthe "
               "energy spiral of §7.4 quantified.\n";
  return 0;
}
