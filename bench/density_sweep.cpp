// Future-work experiment (paper §8): "effects of wireless coverage [and]
// density of nodes" — sweep the node count over the fixed 100x100 m area
// and report search quality and per-node load for the Regular algorithm.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.algorithm = core::AlgorithmKind::kRegular;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Density sweep", "node density vs search quality (Regular)",
               base, seeds);

  stats::Table table({"nodes", "mean degree", "answers/req (rank1)",
                      "answered % (rank1)", "min dist (rank1)",
                      "connect rx/node", "query rx/node"});
  for (const std::size_t n : {25UL, 50UL, 100UL, 150UL, 200UL}) {
    scenario::Parameters params = base;
    params.num_nodes = n;
    const auto result = scenario::run_experiment_cached(params, seeds, 0, {});
    const auto& rank1 = result.ranks[0];
    double connect_total = 0.0, query_total = 0.0;
    for (std::size_t i = 0; i < result.connect_curve.points(); ++i) {
      connect_total += result.connect_curve.mean_at(i);
    }
    for (std::size_t i = 0; i < result.query_curve.points(); ++i) {
      query_total += result.query_curve.mean_at(i);
    }
    const auto members = static_cast<double>(
        std::max<std::size_t>(1, result.connect_curve.points()));
    // Unit-disk mean degree: n * pi * r^2 / A (minus self).
    const double degree = static_cast<double>(n) * 3.14159265 *
                          params.radio_range * params.radio_range /
                          (params.area_width * params.area_height);
    table.add_row({std::to_string(n), fmt(degree),
                   fmt(rank1.answers_per_request.mean()),
                   fmt(100.0 * rank1.answered_fraction.mean(), 1),
                   fmt(rank1.min_distance.mean()),
                   fmt(connect_total / members), fmt(query_total / members)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: below the percolation density the network is "
               "shattered (few answers);\nsearch quality and per-node load "
               "both grow with density.\n";
  return 0;
}
