// Mega-scale tier: does the full stack actually survive 10k-100k nodes?
//
// The other bench tiers measure throughput at scales where any asymptotic
// slip hides inside the constant factor. This tier exists to make the
// complexity story observable: at paper density (50 nodes per
// 100 m x 100 m, side scaling with sqrt(n)) every per-event cost must be
// O(degree) and every resident structure O(what the run touched) — a
// single O(n) scan per event or O(n) table per node turns 100k nodes into
// hours or tens of gigabytes, and this bench is where that shows up first.
//
// Workload shape: one complete scenario::SimulationRun per scale — Regular
// servents over AODV + controlled flood with the paper's Zipf query
// workload, random-waypoint mobility, fault-free. Simulated duration
// shrinks as n grows so the tier stays runnable; counters remain
// fixed-seed reproducible at every scale.
//
// Reported per record (appended to BENCH_megascale.json):
//   frames_per_sec   headline throughput (delivered link frames / wall s)
//   queries_per_sec  end-to-end overlay throughput rides along
//   peak_rss_mb      OS-reported process high-water mark — THE mega-scale
//                    acceptance number (sub-quadratic growth in n). Not a
//                    fixed-seed counter; bench_guard ignores it.
//   model_mem_mb     capacity-accounted model memory (net + routing +
//                    servent state, see RunResult) — deterministic, but
//                    machine-width dependent, so also not guarded.
//
// Usage: megascale [--label NAME] [--out FILE] [--smoke] [--repeat N]
//                  [--ladder-min N]
// --smoke runs a single bounded 10k-node slice (the `mega` ctest + the
// bench_guard counter pin); full mode runs 10k/50k/100k. --ladder-min
// moves the event-queue backend crossover (0 = ladder everywhere, huge =
// heap everywhere) for heap-vs-ladder A/B runs; it must never change a
// fixed-seed counter, only wall_s.
#include <cmath>
#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "perf_record.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"
#include "util/mem.hpp"

namespace {

using namespace p2p;
using bench::Clock;
using bench::Options;
using bench::Record;

scenario::Parameters make_params(std::size_t nodes, double sim_seconds,
                                 const Options& opt) {
  const std::size_t sim_threads = opt.sim_threads;
  const std::size_t sim_shards = opt.sim_shards;
  scenario::Parameters p;
  p.algorithm = core::AlgorithmKind::kRegular;
  p.num_nodes = nodes;
  // Paper density: 50 nodes per 100 m x 100 m cell, side grows as sqrt(n)
  // so mean degree (and with it per-event cost) stays constant.
  const double side = 100.0 * std::sqrt(static_cast<double>(nodes) / 50.0);
  p.area_width = side;
  p.area_height = side;
  p.duration_s = sim_seconds;
  p.seed = 7;  // fixed seed: every counter below must be reproducible
  // On-demand routing only: a proactive protocol (DSDV) carries a row per
  // reachable destination by design — O(n) per node is the protocol, not
  // a bug, and it is exactly what this tier must not measure.
  p.routing_protocol = scenario::RoutingProtocol::kAodv;
  // Spread the join wave across the first tenth of the run instead of the
  // default 2 s: 75k simultaneous join floods is a thundering herd the
  // paper's scenarios never produce.
  p.join_stagger_s = sim_seconds / 10.0;
  // Measurement-only machinery off: the periodic overlay sampler is
  // O(members + edges) per sample and would dominate at this scale.
  p.overlay_sample_interval_s = 0.0;
  // Parallel execution. The shard count is pinned whenever any parallel
  // run is requested (never left to the 0-auto rule) so a --threads sweep
  // compares identical event histories: sim_threads only changes who
  // executes them (scenario::Parameters::effective_sim_shards).
  p.sim_threads = sim_threads;
  if (sim_shards > 0) {
    p.sim_shards = sim_shards;
  } else if (sim_threads > 1) {
    p.sim_shards = nodes >= 8192 ? 64 : 16;
  }
  // Backend A/B override (--ladder-min): move the heap/ladder crossover
  // for this run. Counters must not move with it — only wall_s may.
  if (opt.ladder_min_set) p.ladder_queue_min_nodes = opt.ladder_min;
  return p;
}

Record bench_megascale(const std::string& bench_name, std::size_t nodes,
                       double sim_seconds, int repeat, const Options& opt) {
  Record rec;
  rec.bench = bench_name;
  rec.ops_name = "frames";
  rec.wall_s = 1e100;
  const scenario::Parameters params = make_params(nodes, sim_seconds, opt);
  rec.threads = opt.sim_threads;
  rec.sim_shards = params.effective_sim_shards() > 1
                       ? params.effective_sim_shards()
                       : 0;
  for (int r = 0; r < repeat; ++r) {
    scenario::SimulationRun run(params);
    const auto start = Clock::now();
    const scenario::RunResult result = run.run();
    rec.wall_s = std::min(rec.wall_s, bench::seconds_since(start));

    std::uint64_t queries = 0, answers = 0;
    for (const auto& f : result.per_file) {
      queries += f.requests;
      answers += f.answers_total;
    }
    const std::size_t model_mem = result.net_memory_bytes +
                                  result.routing_memory_bytes +
                                  result.servent_memory_bytes;
    rec.ops = result.frames_delivered;
    rec.extras = {
        {"queries", queries, true},
        {"answers", answers, false},
        {"peak_rss_mb", util::peak_rss_bytes() >> 20, false},
        {"model_mem_mb", model_mem >> 20, false},
    };
    rec.events = result.events_processed;
    rec.frames_delivered = result.frames_delivered;
    rec.peak_queue = result.peak_queue_depth;
    rec.sim_time_s = sim_seconds;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = bench::parse_options(argc, argv, /*allow_suite=*/false);
  if (opt.smoke) {
    // Bounded 10k-node slice: the `mega` ctest tier and the bench_guard
    // counter pin (frames/queries/events — peak_rss_mb is machine state
    // and deliberately outside the guard's counter list). 75 simulated
    // seconds is the minimum for completed queries: the first query fires
    // up to query_gap_max (45 s) after join and finalizes only after the
    // 30 s response window.
    bench::emit(bench_megascale("megascale.smoke", 10000, 75.0, opt.repeat,
                                opt),
                opt);
    if (opt.sim_threads <= 1 && opt.sim_shards == 0) {
      // Sharded smoke (plain --smoke invocations only, so a --threads
      // sweep doesn't double-record): a 5k-node world executed through
      // the conservative parallel path (4 threads, 16-shard model
      // pinned). Its counters are fixed-seed reproducible like everything
      // else here, so bench_guard pins the sharded event history in
      // tier-1 too, at roughly half the cost of the sequential smoke.
      Options sharded = opt;
      sharded.sim_threads = 4;
      sharded.sim_shards = 16;
      bench::emit(bench_megascale("megascale.smoke_sharded", 5000, 75.0,
                                  opt.repeat, sharded),
                  opt);
    }
    return 0;
  }
  struct Scale {
    const char* name;
    std::size_t nodes;
    double sim_seconds;
  };
  // Same simulated duration at every scale so the records answer the
  // scaling question directly: event volume is O(n * sim_time) at constant
  // density, so wall_s and peak_rss_mb should both grow ~linearly in n —
  // anything super-linear is a reintroduced whole-population cost.
  const Scale scales[] = {
      {"megascale.10k", 10000, 90.0},
      {"megascale.50k", 50000, 90.0},
      {"megascale.100k", 100000, 90.0},
  };
  for (const Scale& s : scales) {
    // wall_s is best-of---repeat like every other tier; counters are
    // fixed-seed reproducible regardless. Use --repeat 1 when a quick
    // single pass is enough — a 100k-node world is ~a minute per rep.
    bench::emit(bench_megascale(s.name, s.nodes, s.sim_seconds, opt.repeat,
                                opt),
                opt);
  }
  return 0;
}
