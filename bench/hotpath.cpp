// Self-timed perf-regression harness for the simulator hot paths.
//
// Two suites, selectable with --suite:
//   kernel   — event-queue micro loops (push/pop sweep, steady-state
//              schedule→fire, timer-style push+cancel churn),
//   hotpath  — end-to-end wireless workloads (flooding broadcast storm and
//              a storm+churn mix over AODV), the traffic shape behind every
//              figure in the paper.
//
// Unlike the google-benchmark binary (micro_kernel), this harness emits
// machine-readable JSON so every PR can record the perf trajectory: one
// JSON object per benchmark, appended as a line to --out (JSON Lines; see
// docs/performance.md). Wall time is the only nondeterministic field —
// workloads are fixed-seed so counters (events, frames, peak queue) are
// reproducible and double as a quick determinism cross-check.
//
// Usage:
//   hotpath [--suite kernel|hotpath|all] [--label NAME] [--out FILE]
//           [--smoke] [--repeat N]
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/random_waypoint.hpp"
#include "net/network.hpp"
#include "perf_record.hpp"
#include "routing/aodv.hpp"
#include "routing/flood.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using bench::Clock;
using bench::Options;
using bench::Record;
using bench::emit;
using bench::seconds_since;

// ---------------------------------------------------------------- kernel --

/// Push n random-time no-op events, then pop them all.
Record bench_push_pop(std::size_t n, int repeat) {
  Record rec;
  rec.bench = "kernel.push_pop";
  rec.ops = n * 2;  // one push + one pop each
  rec.wall_s = 1e100;
  for (int r = 0; r < repeat; ++r) {
    sim::RngStream rng(42);
    sim::EventQueue queue;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      queue.push(rng.uniform(0.0, 1000.0), [] {});
    }
    while (!queue.empty()) queue.pop();
    rec.wall_s = std::min(rec.wall_s, seconds_since(start));
  }
  return rec;
}

/// Steady-state schedule→fire: a queue of `depth` events; each pop pushes a
/// successor. This is the fast path the simulator lives on.
Record bench_steady_state(std::size_t depth, std::size_t ops, int repeat) {
  Record rec;
  rec.bench = "kernel.steady_state";
  rec.ops = ops;
  rec.wall_s = 1e100;
  for (int r = 0; r < repeat; ++r) {
    sim::RngStream rng(7);
    sim::EventQueue queue;
    for (std::size_t i = 0; i < depth; ++i) {
      queue.push(rng.uniform(0.0, 1.0), [] {});
    }
    const auto start = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      auto popped = queue.pop();
      queue.push(popped.time + rng.uniform(0.0, 0.1), [] {});
    }
    rec.wall_s = std::min(rec.wall_s, seconds_since(start));
  }
  return rec;
}

/// Timer churn: the P2P maintenance pattern — schedule a timeout, cancel
/// it, reschedule. Exercises push+cancel without ever firing.
Record bench_timer_churn(std::size_t ops, int repeat) {
  Record rec;
  rec.bench = "kernel.timer_churn";
  rec.ops = ops;
  rec.wall_s = 1e100;
  for (int r = 0; r < repeat; ++r) {
    sim::RngStream rng(3);
    sim::EventQueue queue;
    // A standing population so cancels hit a realistically deep heap.
    std::vector<sim::EventId> standing;
    for (int i = 0; i < 256; ++i) {
      standing.push_back(queue.push(rng.uniform(0.0, 10.0), [] {}));
    }
    const auto start = Clock::now();
    sim::EventId pending = sim::kInvalidEventId;
    for (std::size_t i = 0; i < ops; ++i) {
      if (pending != sim::kInvalidEventId) queue.cancel(pending);
      pending = queue.push(rng.uniform(0.0, 10.0), [] {});
    }
    rec.wall_s = std::min(rec.wall_s, seconds_since(start));
  }
  return rec;
}

/// Queue-depth sweep (PR 10): the steady-state loop at a pinned pending
/// depth, once per backend. This is the crossover experiment behind
/// Parameters::ladder_queue_min_nodes — the heap's per-op cost grows as
/// O(log depth) through cold cache lines while the ladder stays flat
/// (methodology: docs/performance.md). peak_queue pins the live
/// high-water mark (== depth) as a guarded fixed-seed counter.
Record bench_steady_depth(const char* name, sim::QueueBackend backend,
                          std::size_t depth, std::size_t ops, int repeat) {
  Record rec;
  rec.bench = name;
  rec.ops = ops;
  rec.wall_s = 1e100;
  for (int r = 0; r < repeat; ++r) {
    sim::RngStream rng(19);
    sim::EventQueue queue(backend);
    for (std::size_t i = 0; i < depth; ++i) {
      queue.push(rng.uniform(0.0, 1.0), [] {});
    }
    const auto start = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      auto popped = queue.pop();
      queue.push(popped.time + rng.uniform(0.0, 0.1), [] {});
    }
    rec.wall_s = std::min(rec.wall_s, seconds_since(start));
    rec.peak_queue = queue.peak_size();
  }
  return rec;
}

// --------------------------------------------------------------- hotpath --

struct StormWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<routing::AodvAgent>> aodv;
  std::vector<std::unique_ptr<routing::FloodService>> flood;

  StormWorld(std::size_t n, double side, double loss, double gray) {
    net::NetworkParams params;
    params.region = {side, side};
    params.mac.loss_probability = loss;
    params.mac.gray_zone_fraction = gray;
    net = std::make_unique<net::Network>(sim, params, sim::RngStream(7));
    sim::RngManager rngs(11);
    for (std::size_t i = 0; i < n; ++i) {
      mobility::RandomWaypointParams rwp;
      rwp.region = params.region;
      auto id = net->add_node(std::make_unique<mobility::RandomWaypoint>(
          rwp, rngs.stream("m", i)));
      routing::AodvParams ap;
      ap.population_hint = n;
      aodv.push_back(std::make_unique<routing::AodvAgent>(sim, *net, id, ap));
      flood.push_back(std::make_unique<routing::FloodService>(
          sim, *net, id, aodv.back().get()));
    }
  }
};

struct StormPayload final : net::AppPayload {
  std::size_t size_bytes() const noexcept override { return 23; }
};

/// Flooding broadcast storm: rotating roots originate hop-limited floods at
/// a fixed cadence — the ping/query traffic shape of the paper's figures.
/// With `churn`, nodes also fail and revive throughout the run.
Record bench_storm(const char* name, std::size_t nodes, double sim_seconds,
                   bool churn, int repeat) {
  Record rec;
  rec.bench = name;
  rec.ops_name = "frames";
  rec.wall_s = 1e100;
  for (int r = 0; r < repeat; ++r) {
    StormWorld world(nodes, 100.0, 0.05, 0.2);
    const auto payload = net::make_payload<const StormPayload>();
    // Storm driver: every 100 ms, eight rotating roots flood 6 hops deep.
    struct Driver {
      StormWorld* world;
      const net::Ref<const StormPayload>* payload;
      double until;
      std::size_t tick = 0;
      void operator()() {
        const std::size_t n = world->flood.size();
        for (std::size_t k = 0; k < 8; ++k) {
          world->flood[(tick * 7 + k * (n / 8 + 1)) % n]->flood(*payload, 6);
        }
        ++tick;
        if (world->sim.now() + 0.1 <= until) {
          world->sim.after(0.1, *this);
        }
      }
    };
    world.sim.after(0.0, Driver{&world, &payload, sim_seconds});
    if (churn) {
      // Deterministic fail/revive pulses across the run. Victims come from
      // a stateless counter hash: an RngStream (mt19937_64, ~2.5 KB) would
      // blow the inline event-capture budget.
      struct Churner {
        StormWorld* world;
        double until;
        std::uint64_t tick = 0;
        void operator()() {
          const auto n = static_cast<std::uint64_t>(world->net->size());
          const auto victim =
              static_cast<net::NodeId>(sim::splitmix64(tick ^ 0x9e3779b9) % n);
          world->net->set_failed(victim, tick % 3 != 2);  // mostly deaths
          ++tick;
          if (world->sim.now() + 0.5 <= until) world->sim.after(0.5, *this);
        }
      };
      world.sim.after(0.25, Churner{&world, sim_seconds});
    }
    const auto start = Clock::now();
    world.sim.run_until(sim_seconds);
    rec.wall_s = std::min(rec.wall_s, seconds_since(start));
    rec.ops = world.net->frames_delivered();
    rec.events = world.sim.events_processed();
    rec.frames_delivered = world.net->frames_delivered();
    rec.peak_queue = world.sim.peak_events_pending();
    rec.sim_time_s = sim_seconds;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = bench::parse_options(argc, argv, /*allow_suite=*/true);
  const bool kernel = opt.suite == "kernel" || opt.suite == "all";
  const bool hotpath = opt.suite == "hotpath" || opt.suite == "all";
  if (!kernel && !hotpath) {
    std::cerr << "unknown suite " << opt.suite << "\n";
    return 1;
  }

  if (kernel) {
    const std::size_t n = opt.smoke ? 2000 : 200000;
    const std::size_t ops = opt.smoke ? 10000 : 2000000;
    emit(bench_push_pop(n, opt.repeat), opt);
    emit(bench_steady_state(1024, ops, opt.repeat), opt);
    emit(bench_timer_churn(ops, opt.repeat), opt);
    // Depth sweep, both backends. Full depths even in smoke (the setup
    // fill is cheap); only the measured op count shrinks.
    const std::size_t sweep_ops = opt.smoke ? 20000 : 2000000;
    struct DepthCase {
      const char* heap_name;
      const char* ladder_name;
      std::size_t depth;
    };
    constexpr DepthCase kDepths[] = {
        {"kernel.depth_1k.heap", "kernel.depth_1k.ladder", 1000},
        {"kernel.depth_100k.heap", "kernel.depth_100k.ladder", 100000},
        {"kernel.depth_500k.heap", "kernel.depth_500k.ladder", 500000},
    };
    for (const DepthCase& c : kDepths) {
      emit(bench_steady_depth(c.heap_name, sim::QueueBackend::kHeap, c.depth,
                              sweep_ops, opt.repeat),
           opt);
      emit(bench_steady_depth(c.ladder_name, sim::QueueBackend::kLadder,
                              c.depth, sweep_ops, opt.repeat),
           opt);
    }
  }
  if (hotpath) {
    const std::size_t nodes = opt.smoke ? 30 : 300;
    const double sim_s = opt.smoke ? 2.0 : 240.0;
    emit(bench_storm("hotpath.broadcast_storm", nodes, sim_s, false,
                     opt.repeat), opt);
    emit(bench_storm("hotpath.storm_churn_mix", nodes, sim_s, true,
                     opt.repeat), opt);
    // Scale tier: same storm shape at 500 nodes (vs. the paper's 150-node
    // ceiling) on the same region — denser fan-out, bigger tables. Shorter
    // simulated span keeps the wall budget comparable to the 300-node run.
    const std::size_t big_nodes = opt.smoke ? 50 : 500;
    const double big_sim_s = opt.smoke ? 1.0 : 60.0;
    emit(bench_storm("hotpath.broadcast_storm_500", big_nodes, big_sim_s,
                     false, opt.repeat), opt);
  }
  return 0;
}
