// Figure 6 (IPDPS'03): distance to find the file and number of answers
// per file request — 150 nodes, 75% in the p2p overlay.
#include "fig_distance_common.hpp"
int main(int argc, char** argv) {
  return bench::run_distance_figure("Figure 6", 150, argc, argv);
}
