// google-benchmark microbenches for the simulation substrate: the event
// queue, the spatial index / channel, AODV route discovery, flooding,
// graph metrics, mobility sampling, and a full miniature run.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/metrics.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/network.hpp"
#include "routing/aodv.hpp"
#include "routing/flood.hpp"
#include "scenario/run.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::RngStream rng(42);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < n; ++i) {
      queue.push(rng.uniform(0.0, 1000.0), [] {});
    }
    while (!queue.empty()) benchmark::DoNotOptimize(queue.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EventQueueCancel(benchmark::State& state) {
  sim::RngStream rng(42);
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(queue.push(rng.uniform(0.0, 1000.0), [] {}));
    }
    for (const auto id : ids) queue.cancel(id);
    benchmark::DoNotOptimize(queue.empty());
  }
  state.SetItemsProcessed(2000 * state.iterations());
}
BENCHMARK(BM_EventQueueCancel);

// Steady-state kernel throughput at a fixed queue depth: the pop-one /
// push-one regime a long simulation settles into. The queue never
// empties, so this isolates per-op cost at depth `range(0)` from setup
// cost. range(1) selects the backend (0 = heap, 1 = ladder) — the
// crossover between the two curves is what sizes
// scenario::Parameters::ladder_queue_min_nodes.
void BM_EventQueueSteadyState(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto backend = static_cast<sim::QueueBackend>(state.range(1));
  sim::RngStream rng(42);
  sim::EventQueue queue(backend);
  double now = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push(rng.uniform(0.0, 10.0), [] {});
  }
  for (auto _ : state) {
    auto popped = queue.pop();
    now = popped.time;
    queue.push(now + rng.uniform(0.0, 10.0), [] {});
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(backend == sim::QueueBackend::kLadder ? "ladder" : "heap");
}
BENCHMARK(BM_EventQueueSteadyState)
    ->ArgsProduct({{64, 1000, 16384, 100000, 500000}, {0, 1}});

// Timer churn: the arm/disarm pattern of connection maintenance — push a
// timeout, cancel it, rearm. With tombstone cancellation this is O(1)
// per cancel; dead entries surface lazily at the heap top.
void BM_EventQueueTimerChurn(benchmark::State& state) {
  sim::RngStream rng(42);
  sim::EventQueue queue;
  double now = 0.0;
  // Standing background events so cancelled timers are interleaved with
  // live ones rather than forming a dead prefix.
  for (int i = 0; i < 256; ++i) queue.push(rng.uniform(0.0, 1e9), [] {});
  sim::EventId armed = sim::kInvalidEventId;
  for (auto _ : state) {
    if (armed != sim::kInvalidEventId) queue.cancel(armed);
    now += 0.25;
    armed = queue.push(now + 30.0, [] {});
  }
  state.SetItemsProcessed(2 * state.iterations());  // one push + one cancel
}
BENCHMARK(BM_EventQueueTimerChurn);

struct World {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<routing::AodvAgent>> aodv;
  std::vector<std::unique_ptr<routing::FloodService>> flood;

  explicit World(std::size_t n, double side = 100.0) {
    net::NetworkParams params;
    params.region = {side, side};
    net = std::make_unique<net::Network>(sim, params, sim::RngStream(7));
    sim::RngManager rngs(11);
    for (std::size_t i = 0; i < n; ++i) {
      mobility::RandomWaypointParams rwp;
      rwp.region = params.region;
      auto id = net->add_node(std::make_unique<mobility::RandomWaypoint>(
          rwp, rngs.stream("m", i)));
      routing::AodvParams ap;
      ap.population_hint = n;
      aodv.push_back(std::make_unique<routing::AodvAgent>(sim, *net, id, ap));
      flood.push_back(std::make_unique<routing::FloodService>(
          sim, *net, id, aodv.back().get()));
    }
  }
};

void BM_NetworkBroadcast(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)));
  struct Noop final : net::FramePayload {};
  const auto payload = net::make_payload<const Noop>();
  const std::uint64_t frames_before = world.net->frames_delivered();
  for (auto _ : state) {
    world.net->broadcast(0, payload, 64);
    world.sim.run();
  }
  state.counters["frames_per_sec"] = benchmark::Counter(
      static_cast<double>(world.net->frames_delivered() - frames_before),
      benchmark::Counter::kIsRate);
  state.counters["peak_queue"] =
      static_cast<double>(world.sim.peak_events_pending());
}
BENCHMARK(BM_NetworkBroadcast)->Arg(50)->Arg(150)->Arg(500);

void BM_AdjacencySnapshot(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.net->adjacency_snapshot());
  }
}
BENCHMARK(BM_AdjacencySnapshot)->Arg(50)->Arg(150)->Arg(500);

void BM_FloodSixHops(benchmark::State& state) {
  World world(150);
  struct Noop final : net::AppPayload {
    std::size_t size_bytes() const noexcept override { return 23; }
  };
  const auto payload = net::make_payload<const Noop>();
  for (auto _ : state) {
    world.flood[0]->flood(payload, 6);
    world.sim.run();
  }
}
BENCHMARK(BM_FloodSixHops);

void BM_AodvDiscoveryAndSend(benchmark::State& state) {
  struct Probe final : net::AppPayload {
    std::size_t size_bytes() const noexcept override { return 23; }
  };
  const auto payload = net::make_payload<const Probe>();
  for (auto _ : state) {
    state.PauseTiming();
    World world(150);
    state.ResumeTiming();
    world.aodv[0]->send(149, payload);
    world.sim.run();
  }
}
BENCHMARK(BM_AodvDiscoveryAndSend)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_GraphMetrics(benchmark::State& state) {
  World world(static_cast<std::size_t>(state.range(0)));
  const graph::Graph g(world.net->adjacency_snapshot());
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::analyze(g));
  }
}
BENCHMARK(BM_GraphMetrics)->Arg(50)->Arg(150)->Unit(benchmark::kMicrosecond);

void BM_RandomWaypointSample(benchmark::State& state) {
  mobility::RandomWaypointParams params;
  mobility::RandomWaypoint model(params, sim::RngStream(3));
  double t = 0.0;
  for (auto _ : state) {
    t += 0.25;
    benchmark::DoNotOptimize(model.position_at(t));
  }
}
BENCHMARK(BM_RandomWaypointSample);

void BM_FullMiniRun(benchmark::State& state) {
  for (auto _ : state) {
    scenario::Parameters params;
    params.num_nodes = 25;
    params.duration_s = 300.0;
    params.algorithm =
        static_cast<core::AlgorithmKind>(state.range(0));
    scenario::SimulationRun run(params);
    benchmark::DoNotOptimize(run.run().frames_transmitted);
  }
}
BENCHMARK(BM_FullMiniRun)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
