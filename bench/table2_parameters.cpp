// Table 2 (IPDPS'03): "Parameters used and their typical values."
//
// Prints the paper's parameter table next to the values this
// implementation uses, including the timers the paper leaves unspecified
// (calibration documented in DESIGN.md / EXPERIMENTS.md).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters p = paper_scenario(50);
  apply_cli(&p, argc, argv);

  std::cout << "== Table 2 — parameters used and their typical values ==\n\n";
  stats::Table table({"parameter", "paper", "this implementation"});
  const auto row = [&](const char* name, const char* paper,
                       const std::string& ours) {
    table.add_row({name, paper, ours});
  };
  row("transmission range", "10 m", fmt(p.radio_range, 0) + " m");
  row("number of distinct searchable files", "20",
      std::to_string(p.num_files));
  row("frequency of the most popular file", "40%",
      fmt(100.0 * p.max_frequency, 0) + "%");
  row("NHOPS_INITIAL", "2 ad-hoc hops", std::to_string(p.p2p.nhops_initial));
  row("MAXNHOPS", "6 ad-hoc hops", std::to_string(p.p2p.maxnhops));
  row("NHOPS (Basic Algorithm)", "6 ad-hoc hops",
      std::to_string(p.p2p.nhops_basic));
  row("MAXDIST", "6 ad-hoc hops", std::to_string(p.p2p.maxdist));
  row("MAXNCONN", "3", std::to_string(p.p2p.maxnconn));
  row("MAXNSLAVES", "3", std::to_string(p.p2p.maxnslaves));
  row("TTL for queries", "6 p2p hops", std::to_string(p.p2p.query_ttl));
  row("area", "100 m x 100 m",
      fmt(p.area_width, 0) + " m x " + fmt(p.area_height, 0) + " m");
  row("nodes", "50 / 150", "50 / 150 (benches)");
  row("p2p members", "75% of nodes",
      fmt(100.0 * p.p2p_fraction, 0) + "% of nodes");
  row("mobility", "random waypoint, <= 1 m/s, pause <= 100 s",
      std::string("random waypoint, <= ") + fmt(p.max_speed, 1) +
          " m/s, pause <= " + fmt(p.max_pause, 0) + " s");
  row("simulated time", "3600 s", fmt(p.duration_s, 0) + " s");
  row("repetitions", "33", std::to_string(scenario::bench_seed_count()));
  row("TIMER_INITIAL (unspecified)", "-", fmt(p.p2p.timer_initial, 0) + " s");
  row("MAXTIMER (unspecified)", "-", fmt(p.p2p.maxtimer, 0) + " s");
  row("MAXTIMERMASTER (unspecified)", "-",
      fmt(p.p2p.maxtimer_master, 0) + " s");
  row("ping interval (unspecified)", "-", fmt(p.p2p.ping_interval, 0) + " s");
  row("pong timeout (unspecified)", "-", fmt(p.p2p.pong_timeout, 0) + " s");
  table.print(std::cout);
  return 0;
}
