// Figure 10 (IPDPS'03): ping messages received per node — 150 nodes.
#include "fig_curve_common.hpp"
int main(int argc, char** argv) {
  return bench::run_curve_figure("Figure 10", 150, bench::CurveMetric::kPing,
                                 argc, argv);
}
