// Ablation: does the Random algorithm's long link buy small-world
// structure? (paper §6.1.4 and the §7.4 discussion of why the effect was
// invisible at n = 50/150 with k = 3)
//
// Compares Regular vs Random overlays on a static, fully-p2p network —
// removing mobility isolates the topology question from churn, the
// paper's second hypothesis for the missing effect ("the random
// connections go down before the nodes could benefit from them").
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(150);
  base.p2p_fraction = 1.0;
  base.mobile = false;
  base.duration_s = 900.0;
  base.p2p.enable_queries = false;  // overlay formation only
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Ablation", "random long link vs overlay structure", base,
               seeds);

  stats::Table table({"algorithm", "clustering C", "path length L",
                      "components", "C/L ratio"});
  for (const auto kind :
       {core::AlgorithmKind::kRegular, core::AlgorithmKind::kRandom}) {
    scenario::Parameters params = base;
    params.algorithm = kind;
    const auto result = scenario::run_experiment_cached(params, seeds, 0, {});
    const double c = result.overlay_clustering.mean();
    const double l = result.overlay_path_length.mean();
    table.add_row({core::algorithm_name(kind), fmt(c, 3), fmt(l, 2),
                   fmt(result.overlay_components.mean(), 1),
                   fmt(l > 0 ? c / l : 0.0, 4)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: Random trades little clustering for a shorter "
               "characteristic path length\n(bridges between distant "
               "clusters) — the Watts-Strogatz small-world signature.\n";
  return 0;
}
