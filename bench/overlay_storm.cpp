// Full-stack overlay storm: the missing bench tier above hotpath.cpp
// (kernel + raw wireless storms) and aodv_storm.cpp (route discovery).
//
// Workload shape: a complete scenario::SimulationRun — servents running one
// of the four (re)configuration algorithms over AODV + controlled flood,
// with the paper's Zipf query workload and node churn forcing continuous
// reconfiguration. Density matches the paper (side scales with sqrt(n)),
// so 150 nodes is the paper's large scenario and 500 nodes is the
// ROADMAP's past-the-paper scale point.
//
// Headline unit: completed queries per wall second (the overlay layer's
// end-to-end throughput). Secondary fixed-seed counters ride along so the
// bench_guard ctest can pin behavior: answers, connect msgs, total overlay
// msgs received, frames_delivered, events, peak_queue. Records append to
// BENCH_overlay.json under names "overlay_storm.<alg>_<nodes>" (full
// scale) / "overlay_storm.<alg>" (--smoke).
//
// Usage: overlay_storm [--label NAME] [--out FILE] [--smoke] [--repeat N]
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "perf_record.hpp"
#include "scenario/parameters.hpp"
#include "scenario/run.hpp"

namespace {

using namespace p2p;
using bench::Clock;
using bench::Options;
using bench::Record;

const char* alg_slug(core::AlgorithmKind alg) {
  switch (alg) {
    case core::AlgorithmKind::kBasic: return "basic";
    case core::AlgorithmKind::kRegular: return "regular";
    case core::AlgorithmKind::kRandom: return "random";
    case core::AlgorithmKind::kHybrid: return "hybrid";
  }
  return "?";
}

scenario::Parameters make_params(core::AlgorithmKind alg, std::size_t nodes,
                                 double sim_seconds) {
  scenario::Parameters p;
  p.algorithm = alg;
  p.num_nodes = nodes;
  // Keep the paper's node density (50 nodes per 100 m x 100 m).
  const double side = 100.0 * std::sqrt(static_cast<double>(nodes) / 50.0);
  p.area_width = side;
  p.area_height = side;
  p.duration_s = sim_seconds;
  p.seed = 7;  // fixed seed: every counter below must be reproducible
  // Churn keeps the reconfiguration machinery hot: each node crashes about
  // every 20 simulated minutes and is reborn half a minute later.
  p.fault.churn_rate_per_hour = 3.0;
  p.fault.mean_downtime_s = 30.0;
  // Measurement-only machinery off: this bench times the message path, not
  // the O(n + m) graph analysis of the overlay sampler.
  p.overlay_sample_interval_s = 0.0;
  return p;
}

Record bench_overlay_storm(const std::string& bench_name,
                           core::AlgorithmKind alg, std::size_t nodes,
                           double sim_seconds, int repeat) {
  Record rec;
  rec.bench = bench_name;
  rec.ops_name = "queries";
  rec.wall_s = 1e100;
  const scenario::Parameters params = make_params(alg, nodes, sim_seconds);
  for (int r = 0; r < repeat; ++r) {
    scenario::SimulationRun run(params);
    const auto start = Clock::now();
    const scenario::RunResult result = run.run();
    rec.wall_s = std::min(rec.wall_s, bench::seconds_since(start));

    std::uint64_t queries = 0, answers = 0;
    for (const auto& f : result.per_file) {
      queries += f.requests;
      answers += f.answers_total;
    }
    std::uint64_t connect_msgs = 0, msgs = 0;
    for (const auto& c : result.counters) {
      connect_msgs += c.connect_received();
      for (const auto n : c.received) msgs += n;
    }
    rec.ops = queries;
    rec.extras = {{"answers", answers, false},
                  {"connect_msgs", connect_msgs, false},
                  {"msgs", msgs, true}};
    rec.events = result.events_processed;
    rec.frames_delivered = result.frames_delivered;
    rec.peak_queue = result.peak_queue_depth;
    rec.sim_time_s = sim_seconds;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = bench::parse_options(argc, argv, /*allow_suite=*/false);
  const core::AlgorithmKind algs[] = {
      core::AlgorithmKind::kBasic, core::AlgorithmKind::kRegular,
      core::AlgorithmKind::kRandom, core::AlgorithmKind::kHybrid};
  if (opt.smoke) {
    // Tiny scale for ctest / bench_guard: one scenario per algorithm.
    for (const auto alg : algs) {
      const std::string name = std::string("overlay_storm.") + alg_slug(alg);
      bench::emit(bench_overlay_storm(name, alg, 40, 120.0, opt.repeat), opt);
    }
    return 0;
  }
  for (const auto alg : algs) {
    for (const std::size_t nodes : {std::size_t{150}, std::size_t{500}}) {
      // Full paper duration at 150 nodes; half an hour at 500 keeps the
      // whole tier (x3 repeats) under a minute of wall time per label.
      const double sim_s = nodes >= 500 ? 1800.0 : 3600.0;
      const std::string name = std::string("overlay_storm.") + alg_slug(alg) +
                               "_" + std::to_string(nodes);
      bench::emit(bench_overlay_storm(name, alg, nodes, sim_s, opt.repeat),
                  opt);
    }
  }
  return 0;
}
