// Ablation: sensitivity of connect traffic to the timer choices the paper
// does not specify.
//
// Sweeps TIMER_INITIAL and toggles the exponential backoff (improvement
// #4 of the Regular algorithm: setting MAXTIMER = TIMER_INITIAL disables
// it). The expectation: larger initial timers and backoff both cut
// connect traffic, with backoff mattering most in sparse scenarios where
// nodes can rarely fill MAXNCONN.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.algorithm = core::AlgorithmKind::kRegular;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Ablation", "timer calibration (Regular algorithm)", base, seeds);

  stats::Table table({"TIMER_INITIAL", "backoff", "connect rx/node",
                      "ping rx/node", "frames tx", "answers ok"});
  for (const double timer : {10.0, 30.0, 60.0}) {
    for (const bool backoff : {true, false}) {
      scenario::Parameters params = base;
      params.p2p.timer_initial = timer;
      params.p2p.maxtimer = backoff ? 16.0 * timer : timer;
      const auto result =
          scenario::run_experiment_cached(params, seeds, 0, {});
      double connect_total = 0.0, ping_total = 0.0;
      for (std::size_t i = 0; i < result.connect_curve.points(); ++i) {
        connect_total += result.connect_curve.mean_at(i);
      }
      for (std::size_t i = 0; i < result.ping_curve.points(); ++i) {
        ping_total += result.ping_curve.mean_at(i);
      }
      const auto members =
          static_cast<double>(std::max<std::size_t>(1, result.connect_curve.points()));
      double answered = 0.0;
      std::size_t ranks = 0;
      for (const auto& rank : result.ranks) {
        if (rank.answered_fraction.count() > 0) {
          answered += rank.answered_fraction.mean();
          ++ranks;
        }
      }
      table.add_row({fmt(timer, 0) + " s", backoff ? "on" : "off",
                     fmt(connect_total / members),
                     fmt(ping_total / members),
                     fmt(result.frames_transmitted.mean(), 0),
                     fmt(ranks ? answered / static_cast<double>(ranks) : 0.0, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nbackoff=off sets MAXTIMER = TIMER_INITIAL (no doubling). "
               "The doubling (the paper's\nimprovement #4) roughly halves "
               "connect traffic; the cost is a modest drop in\nanswered "
               "queries because backed-off nodes reconnect more slowly — the "
               "efficiency/\nperformance trade the paper's 'good cost-benefit "
               "relation' refers to.\n";
  return 0;
}
