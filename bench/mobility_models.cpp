// Future-work experiment (paper §8: "effects of ... mobility"): the same
// Regular-algorithm workload under three mobility models from the survey
// the paper cites ([Camp, Boleng, Davies 2002]).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.algorithm = core::AlgorithmKind::kRegular;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Mobility sweep", "mobility model vs overlay stability", base,
               seeds);

  struct Row {
    scenario::MobilityKind kind;
    const char* name;
  };
  const Row rows[] = {
      {scenario::MobilityKind::kRandomWaypoint, "random waypoint (paper)"},
      {scenario::MobilityKind::kRandomDirection, "random direction"},
      {scenario::MobilityKind::kGaussMarkov, "gauss-markov"},
  };

  stats::Table table({"mobility", "connect rx/node", "ping rx/node",
                      "answers/req (rank1)", "answered % (rank1)",
                      "overlay components"});
  for (const Row& row : rows) {
    scenario::Parameters params = base;
    params.mobility_kind = row.kind;
    const auto result = scenario::run_experiment_cached(params, seeds, 0, {});
    double connect_total = 0.0, ping_total = 0.0;
    for (std::size_t i = 0; i < result.connect_curve.points(); ++i) {
      connect_total += result.connect_curve.mean_at(i);
    }
    for (std::size_t i = 0; i < result.ping_curve.points(); ++i) {
      ping_total += result.ping_curve.mean_at(i);
    }
    const auto members = static_cast<double>(
        std::max<std::size_t>(1, result.connect_curve.points()));
    const auto& rank1 = result.ranks[0];
    table.add_row({row.name, fmt(connect_total / members),
                   fmt(ping_total / members),
                   fmt(rank1.answers_per_request.count() > 0
                           ? rank1.answers_per_request.mean()
                           : 0.0),
                   fmt(rank1.answered_fraction.count() > 0
                           ? 100.0 * rank1.answered_fraction.mean()
                           : 0.0,
                       1),
                   fmt(result.overlay_components.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: random direction's edge bias lowers average "
               "connectivity (more\ncomponents, fewer answers); gauss-markov's "
               "smooth motion keeps links alive\nlonger (less reconfiguration "
               "traffic per successful search).\n";
  return 0;
}
