// Route-discovery storm: the AODV-heavy counterpart to hotpath.cpp's
// flooding storms, built to hammer the per-route hot paths that the dense
// RoutingTable / DupCache representations serve.
//
// Workload shape: nodes wander (random waypoint) over a region ~12 radio
// ranges across, and every tick a rotating set of sources unicasts a small
// payload to a far destination. Route lifetimes are cut to a third of the
// ns-2 default, so routes keep expiring under mobility and nearly every
// send re-runs expanding-ring RREQ discovery (RFC 3561 §6.4): TTL-limited
// broadcast floods through every node's RREQ DupCache, reverse-route
// installs via RoutingTable::update, RREP unicasts along precursors, and
// RERR sweeps (destinations_via) when a moving next hop breaks a link.
//
// Emits the same JSONL records as bench/hotpath.cpp (headline unit:
// delivered frames/s, dominated by RREQ flood fan-out); tools/bench.sh
// appends them to BENCH_hotpath.json under the bench name
// "hotpath.aodv_storm".
//
// Usage: aodv_storm [--label NAME] [--out FILE] [--smoke] [--repeat N]
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mobility/random_waypoint.hpp"
#include "net/network.hpp"
#include "perf_record.hpp"
#include "routing/aodv.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2p;
using bench::Clock;
using bench::Options;
using bench::Record;

struct AodvWorld {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<routing::AodvAgent>> aodv;

  AodvWorld(std::size_t n, double side) {
    net::NetworkParams params;
    params.region = {side, side};
    params.mac.loss_probability = 0.05;  // lossy channel: retries + RERRs
    net = std::make_unique<net::Network>(sim, params, sim::RngStream(19));
    routing::AodvParams ap;
    // A third of the ns-2 default: routes expire between revisits of the
    // same destination, so the table churns instead of saturating.
    ap.active_route_timeout = 3.0;
    ap.my_route_timeout = 6.0;
    ap.population_hint = n;
    sim::RngManager rngs(23);
    for (std::size_t i = 0; i < n; ++i) {
      mobility::RandomWaypointParams rwp;
      rwp.region = params.region;
      rwp.max_pause = 5.0;  // mostly moving: link breaks stay frequent
      const auto id = net->add_node(std::make_unique<mobility::RandomWaypoint>(
          rwp, rngs.stream("m", i)));
      aodv.push_back(std::make_unique<routing::AodvAgent>(sim, *net, id, ap));
    }
  }
};

struct ProbePayload final : net::AppPayload {
  std::size_t size_bytes() const noexcept override { return 31; }
};

Record bench_aodv_storm(std::size_t nodes, double side, double sim_seconds,
                        int repeat) {
  Record rec;
  rec.bench = "hotpath.aodv_storm";
  rec.ops_name = "frames";
  rec.wall_s = 1e100;
  for (int r = 0; r < repeat; ++r) {
    AodvWorld world(nodes, side);
    const auto payload = net::make_payload<const ProbePayload>();
    // Every 50 ms, four rotating sources each unicast to a destination
    // roughly half the id space away — far enough that most pairs need a
    // multi-hop route, i.e. a discovery. The stride constants are coprime
    // to typical n so the (src, dst) pairs sweep the whole matrix instead
    // of cycling through a few warm routes.
    struct Driver {
      AodvWorld* world;
      const net::Ref<const ProbePayload>* payload;
      double until;
      std::uint64_t tick = 0;
      void operator()() {
        const std::uint64_t n = world->aodv.size();
        for (std::uint64_t k = 0; k < 4; ++k) {
          const auto src = static_cast<net::NodeId>((tick * 13 + k * 37) % n);
          const auto dst = static_cast<net::NodeId>(
              (src + n / 2 + (tick + k) % 7) % n);
          if (src != dst) world->aodv[src]->send(dst, *payload);
        }
        ++tick;
        if (world->sim.now() + 0.05 <= until) world->sim.after(0.05, *this);
      }
    };
    world.sim.after(0.0, Driver{&world, &payload, sim_seconds});
    const auto start = Clock::now();
    world.sim.run_until(sim_seconds);
    rec.wall_s = std::min(rec.wall_s, bench::seconds_since(start));
    rec.ops = world.net->frames_delivered();
    rec.events = world.sim.events_processed();
    rec.frames_delivered = world.net->frames_delivered();
    rec.peak_queue = world.sim.peak_events_pending();
    rec.sim_time_s = sim_seconds;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = bench::parse_options(argc, argv, /*allow_suite=*/false);
  const std::size_t nodes = opt.smoke ? 40 : 200;
  const double side = opt.smoke ? 45.0 : 120.0;  // ~12 ranges across at scale
  const double sim_s = opt.smoke ? 2.0 : 120.0;
  bench::emit(bench_aodv_storm(nodes, side, sim_s, opt.repeat), opt);
  return 0;
}
