// Figure 12 (IPDPS'03): query messages received per node — 150 nodes.
#include "fig_curve_common.hpp"
int main(int argc, char** argv) {
  return bench::run_curve_figure("Figure 12", 150, bench::CurveMetric::kQuery,
                                 argc, argv);
}
