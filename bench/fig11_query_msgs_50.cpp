// Figure 11 (IPDPS'03): query messages received per node — 50 nodes.
#include "fig_curve_common.hpp"
int main(int argc, char** argv) {
  return bench::run_curve_figure("Figure 11", 50, bench::CurveMetric::kQuery,
                                 argc, argv);
}
