// Shared implementation of Figures 5 and 6: "average minimum distance to
// reach a node that has the requested file and the average number of
// answers per file request" vs file popularity rank 1..10, for all four
// algorithms.
#pragma once

#include "bench_common.hpp"

namespace bench {

inline int run_distance_figure(const char* figure, std::size_t num_nodes,
                               int argc, char** argv) {
  scenario::Parameters params = paper_scenario(num_nodes);
  apply_cli(&params, argc, argv);
  const std::size_t seeds = scenario::bench_seed_count();
  print_header(figure,
               "distance to find the file and # of answers per file request",
               params, seeds);

  std::vector<scenario::ExperimentResult> results;
  for (const auto kind : kAllAlgorithms) {
    results.push_back(run_algorithm(params, kind, seeds));
  }

  const std::size_t ranks = std::min<std::size_t>(10, params.num_files);

  {
    std::vector<std::string> headers{"file rank"};
    for (const auto kind : kAllAlgorithms) {
      headers.push_back(std::string(core::algorithm_name(kind)) + " dist");
      headers.push_back(std::string(core::algorithm_name(kind)) + " ±95%");
    }
    stats::Table table(std::move(headers));
    for (std::size_t k = 0; k < ranks; ++k) {
      std::vector<std::string> row{std::to_string(k + 1)};
      for (const auto& r : results) {
        row.push_back(fmt(r.ranks[k].min_distance.mean()));
        row.push_back(fmt(r.ranks[k].min_distance.ci95_halfwidth()));
      }
      table.add_row(std::move(row));
    }
    std::cout << "Average minimum distance (ad-hoc hops) to the nearest "
                 "answering peer:\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::vector<std::string> headers{"file rank"};
    for (const auto kind : kAllAlgorithms) {
      headers.push_back(std::string(core::algorithm_name(kind)) + " answers");
      headers.push_back(std::string(core::algorithm_name(kind)) + " ±95%");
    }
    stats::Table table(std::move(headers));
    for (std::size_t k = 0; k < ranks; ++k) {
      std::vector<std::string> row{std::to_string(k + 1)};
      for (const auto& r : results) {
        row.push_back(fmt(r.ranks[k].answers_per_request.mean()));
        row.push_back(fmt(r.ranks[k].answers_per_request.ci95_halfwidth()));
      }
      table.add_row(std::move(row));
    }
    std::cout << "Average number of answers per file request:\n";
    table.print(std::cout);
  }

  {
    std::vector<std::string> headers{"rank"};
    for (const auto kind : kAllAlgorithms) {
      headers.push_back(std::string(core::algorithm_name(kind)) + "_dist");
      headers.push_back(std::string(core::algorithm_name(kind)) + "_answers");
    }
    stats::Table csv(std::move(headers));
    for (std::size_t k = 0; k < ranks; ++k) {
      std::vector<double> row{static_cast<double>(k + 1)};
      for (const auto& r : results) {
        row.push_back(r.ranks[k].min_distance.mean());
        row.push_back(r.ranks[k].answers_per_request.mean());
      }
      csv.add_row_values(row);
    }
    std::string name = figure;
    for (char& c : name) {
      if (c == ' ') c = '_';
    }
    maybe_export_csv(csv, name.c_str());
  }

  std::cout << "\npaper's expected shape: answers decay with rank (Zipf "
               "placement);\ndistance oscillates but tends to increase with "
               "rank.\n";
  return 0;
}

}  // namespace bench
