// "Figure C" — overlay resilience under churn (paper §8 future work).
//
// Sweeps the node death/birth rate with the deterministic fault-injection
// subsystem (src/fault) and reports, per algorithm: query success rate,
// how long the live-member overlay stayed fragmented, the mean time from
// fragmentation to repair, orphaned servents at the end, and the
// invariant-checker verdict (always 0 — a non-zero count is a bug, not a
// result).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.duration_s = 900.0;  // churn effects show within minutes
  base.fault.mean_downtime_s = 60.0;
  base.invariant_check_interval_s = 30.0;
  apply_cli(&base, argc, argv);
  const std::size_t seeds =
      std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Figure C", "overlay resilience vs churn rate", base, seeds);

  const double churn_rates[] = {0.0, 4.0, 12.0};  // deaths/node/hour
  stats::Table table({"algorithm", "churn/h", "deaths", "success %",
                      "disrupted s", "repair s", "orphans", "violations"});
  for (const auto kind : kAllAlgorithms) {
    for (const double rate : churn_rates) {
      scenario::Parameters params = base;
      params.fault.churn_rate_per_hour = rate;
      const auto result = run_algorithm(params, kind, seeds);
      table.add_row(
          {core::algorithm_name(kind), fmt(rate, 0),
           fmt(result.churn_deaths.mean(), 1),
           fmt(100.0 * result.query_success_rate.mean(), 1),
           fmt(result.overlay_disrupted_s.mean(), 0),
           result.mean_repair_time_s.count() > 0
               ? fmt(result.mean_repair_time_s.mean(), 0)
               : "-",
           fmt(result.orphaned_servents.mean(), 1),
           fmt(result.invariant_violations.mean(), 0)});
    }
  }
  table.print(std::cout);
  maybe_export_csv(table, "figC_churn_resilience");
  std::cout << "\nexpected: at these rates a death lands every few seconds "
               "while noticing one takes\nminute-scale ping timeouts, so the "
               "live-member overlay stays disrupted almost\ncontinuously, "
               "repairs only complete in the low-churn runs, and reborn "
               "nodes\naccumulate as orphans under every algorithm; "
               "violations must stay 0 (the checker\nis the oracle, not a "
               "result).\n";
  return 0;
}
