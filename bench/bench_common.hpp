// Shared scaffolding for the figure-reproduction benches.
#pragma once

#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "scenario/cache.hpp"
#include "scenario/experiment.hpp"
#include "scenario/telemetry.hpp"
#include "stats/fairness.hpp"
#include "stats/table.hpp"
#include "util/config.hpp"

namespace bench {

using namespace p2p;

inline const std::vector<core::AlgorithmKind> kAllAlgorithms = {
    core::AlgorithmKind::kBasic, core::AlgorithmKind::kRegular,
    core::AlgorithmKind::kRandom, core::AlgorithmKind::kHybrid};

/// Paper-default scenario for the given node count.
inline scenario::Parameters paper_scenario(std::size_t num_nodes) {
  scenario::Parameters params;
  params.num_nodes = num_nodes;
  return params;
}

/// Apply command-line key=value overrides; exits on bad input.
inline void apply_cli(scenario::Parameters* params, int argc, char** argv) {
  util::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!config.parse_override(argv[i], &error)) {
      std::cerr << "bad argument '" << argv[i] << "': " << error << "\n";
      std::exit(1);
    }
  }
  if (const std::string error = params->apply(config); !error.empty()) {
    std::cerr << "bad parameter: " << error << "\n";
    std::exit(1);
  }
}

inline void print_header(const char* figure, const char* what,
                         const scenario::Parameters& params,
                         std::size_t seeds) {
  std::cout << "== " << figure << " — " << what << " ==\n"
            << "scenario: " << params.num_nodes << " nodes, "
            << params.num_members() << " p2p members, "
            << params.duration_s << " s, " << seeds
            << " repetitions (paper: 33)\n\n";
}

/// Run (or load) the experiment for one algorithm under the paper setup.
/// Set P2P_BENCH_TELEMETRY=1 to log per-seed wall time and events/sec
/// (the same data lands in the JSONL manifest next to the cache entry).
inline scenario::ExperimentResult run_algorithm(
    scenario::Parameters params, core::AlgorithmKind kind,
    std::size_t seeds) {
  params.algorithm = kind;
  std::fprintf(stderr, "[bench] %s n=%zu: ", core::algorithm_name(kind),
               params.num_nodes);
  const bool verbose = std::getenv("P2P_BENCH_TELEMETRY") != nullptr;
  scenario::RunTelemetry telemetry;
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> cached{true};
  const auto on_run_done = [&](std::size_t seed_index, std::size_t total) {
    cached.store(false);
    const std::size_t done = completed.fetch_add(1) + 1;
    if (verbose) {
      const auto& t = telemetry.per_seed()[seed_index];
      std::fprintf(stderr, "\n[bench]   seed %llu (%zu/%zu): %.2f s, %.0f events/s",
                   static_cast<unsigned long long>(t.seed), done, total,
                   t.wall_seconds, t.events_per_sec);
    } else {
      std::fprintf(stderr, "%zu/%zu ", done, total);
    }
    std::fflush(stderr);
  };
  const auto result = scenario::run_experiment_cached(
      params, seeds, /*threads=*/0, on_run_done, &telemetry);
  if (cached.load()) {
    std::fprintf(stderr, "(cached)\n");
  } else if (verbose) {
    std::fprintf(stderr,
                 "\n[bench]   total %.2f s on %zu threads, %.0f events/s "
                 "(manifest: %s)\n",
                 telemetry.total_wall_seconds(), telemetry.threads_used(),
                 telemetry.aggregate_events_per_sec(),
                 scenario::manifest_path(params, seeds).c_str());
  } else {
    std::fprintf(stderr, "done\n");
  }
  return result;
}

inline std::string fmt(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// If P2P_BENCH_CSV_DIR is set, write the table there as <name>.csv for
/// plotting; prints a note on success.
inline void maybe_export_csv(const stats::Table& table, const char* name) {
  const char* dir = std::getenv("P2P_BENCH_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  if (table.write_csv(path)) {
    std::cout << "(csv written to " << path << ")\n";
  } else {
    std::cerr << "failed to write " << path << "\n";
  }
}

/// Print the paper's "nodes decreasingly ordered" curve for one received-
/// message metric, all four algorithms side by side.
inline void print_sorted_curves(
    const char* metric,
    const std::vector<std::pair<core::AlgorithmKind,
                                const stats::SortedCurve*>>& curves) {
  std::vector<std::string> headers{"node rank"};
  std::size_t points = 0;
  for (const auto& [kind, curve] : curves) {
    headers.emplace_back(core::algorithm_name(kind));
    points = std::max(points, curve->points());
  }
  stats::Table table(std::move(headers));
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& [kind, curve] : curves) {
      row.push_back(i < curve->points() ? fmt(curve->mean_at(i)) : "-");
    }
    table.add_row(std::move(row));
  }
  std::cout << metric << " received per node, nodes decreasingly ordered "
            << "(mean over repetitions):\n";
  table.print(std::cout);
}

}  // namespace bench
