// Future-work experiment (paper §7.4/§8): the small-world effect needs
// "the number of nodes much larger than the number of connections" —
// sweep n with k = MAXNCONN = 3 fixed and watch when Random's shorter
// path lengths emerge.
#include "bench_common.hpp"

#include <cmath>

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.p2p_fraction = 1.0;
  base.mobile = false;
  base.duration_s = 900.0;
  base.p2p.enable_queries = false;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Scale sweep", "small-world metrics vs network size", base,
               seeds);

  stats::Table table({"n", "density", "Regular C", "Regular L", "Random C",
                      "Random L", "L ratio (Rnd/Reg)"});
  for (const std::size_t n : {50UL, 100UL, 200UL, 400UL}) {
    // Keep physical density constant: area grows with n.
    const double side = std::sqrt(static_cast<double>(n) / 150.0) * 100.0 * 1.3;
    double c[2] = {0, 0}, l[2] = {0, 0};
    int idx = 0;
    for (const auto kind :
         {core::AlgorithmKind::kRegular, core::AlgorithmKind::kRandom}) {
      scenario::Parameters params = base;
      params.num_nodes = n;
      params.area_width = side;
      params.area_height = side;
      params.algorithm = kind;
      const auto result =
          scenario::run_experiment_cached(params, seeds, 0, {});
      c[idx] = result.overlay_clustering.mean();
      l[idx] = result.overlay_path_length.mean();
      ++idx;
    }
    table.add_row({std::to_string(n),
                   fmt(static_cast<double>(n) / (side * side) * 1e4, 1),
                   fmt(c[0], 3), fmt(l[0], 2), fmt(c[1], 3), fmt(l[1], 2),
                   fmt(l[0] > 0 ? l[1] / l[0] : 0.0, 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: with churn removed the L ratio sits below 1 "
               "across the sweep — the regime\nthe paper says its mobile "
               "50/150-node scenarios could not reach.\n";
  return 0;
}
