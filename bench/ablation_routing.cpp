// Routing-protocol comparison under the P2P workload — the experiment of
// the paper's companion study (Oliveira, Siqueira, Loureiro, "Evaluation
// of Ad-hoc Routing Protocols under a Peer-to-Peer Application", WCNC'03,
// reference [13]): on-demand AODV vs proactive DSDV carrying the Regular
// algorithm's traffic on the paper's 50-node mobile scenario.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bench;
  scenario::Parameters base = paper_scenario(50);
  base.algorithm = core::AlgorithmKind::kRegular;
  apply_cli(&base, argc, argv);
  const std::size_t seeds = std::min<std::size_t>(scenario::bench_seed_count(), 3);
  print_header("Ablation", "AODV vs DSR vs DSDV under the Regular p2p workload",
               base, seeds);

  stats::Table table({"routing", "answers/req (rank1)", "answered % (rank1)",
                      "control msgs", "frames tx", "energy J"});
  for (const auto protocol :
       {scenario::RoutingProtocol::kAodv, scenario::RoutingProtocol::kDsr,
        scenario::RoutingProtocol::kDsdv}) {
    scenario::Parameters params = base;
    params.routing_protocol = protocol;
    const auto result = scenario::run_experiment_cached(params, seeds, 0, {});
    const auto& rank1 = result.ranks[0];
    table.add_row(
        {protocol == scenario::RoutingProtocol::kAodv   ? "AODV"
         : protocol == scenario::RoutingProtocol::kDsr ? "DSR"
                                                       : "DSDV",
         fmt(rank1.answers_per_request.count() > 0
                 ? rank1.answers_per_request.mean()
                 : 0.0),
         fmt(rank1.answered_fraction.count() > 0
                 ? 100.0 * rank1.answered_fraction.mean()
                 : 0.0,
             1),
         fmt(result.routing_control.mean(), 0),
         fmt(result.frames_transmitted.mean(), 0),
         fmt(result.energy_consumed_j.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nexpected ([13], and the paper's §4 rationale for choosing "
               "AODV): the on-demand\nprotocols deliver the best search "
               "quality under high mobility — AODV first,\nDSR close behind "
               "at a fraction of the traffic — while DSDV's periodic dumps\n"
               "are cheap but leave routes stale between rounds, costing "
               "answered queries.\n";
  return 0;
}
