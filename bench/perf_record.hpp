// Shared scaffolding for the self-timed perf-regression binaries
// (bench/hotpath.cpp, bench/aodv_storm.cpp): the JSONL record format that
// tools/bench.sh appends to BENCH_kernel.json / BENCH_hotpath.json, and
// the common command-line surface (--label/--out/--smoke/--repeat).
//
// Wall time is the only nondeterministic field — workloads are fixed-seed
// so counters (ops, events, frames_delivered, peak_queue) are reproducible
// across runs and machines, which is what the bench_guard ctest asserts.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace bench {

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Options shared by every perf binary. `suite` is only meaningful for
/// binaries that host more than one suite (hotpath); single-workload
/// binaries ignore it.
struct Options {
  std::string suite = "all";
  std::string label = "dev";
  std::string out;       // empty = stdout only
  bool smoke = false;    // tiny scale, exercises the JSON path in ctest
  int repeat = 3;        // best-of-N wall time
  // Parallel execution (scenario-level benches only; kernel/microbench
  // binaries accept and ignore them so tools/bench.sh can pass them
  // uniformly). sim_threads is pure execution; sim_shards pins the model
  // decomposition so thread sweeps compare identical event histories
  // (scenario::Parameters::effective_sim_shards).
  std::size_t sim_threads = 1;
  std::size_t sim_shards = 0;
  // Event-queue backend gate override for scenario-level benches
  // (scenario::Parameters::ladder_queue_min_nodes). Unset = keep the
  // scenario default; 0 forces the ladder everywhere; a huge value
  // forces the heap. Both backends pop the identical (time, seq) order,
  // so A/B runs at different --ladder-min values must report the same
  // fixed-seed counters — only wall_s moves.
  bool ladder_min_set = false;
  std::size_t ladder_min = 0;
};

/// Parse the common flags. Exits with a message on malformed input or,
/// when `allow_suite` is false, on --suite.
inline Options parse_options(int argc, char** argv, bool allow_suite) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (allow_suite && arg == "--suite") {
      opt.suite = value();
    } else if (arg == "--label") {
      opt.label = value();
    } else if (arg == "--out") {
      opt.out = value();
    } else if (arg == "--smoke") {
      opt.smoke = true;
      opt.repeat = 1;
    } else if (arg == "--repeat") {
      opt.repeat = std::atoi(value().c_str());
    } else if (arg == "--sim-threads") {
      opt.sim_threads = static_cast<std::size_t>(
          std::strtoull(value().c_str(), nullptr, 10));
      if (opt.sim_threads == 0) opt.sim_threads = 1;
    } else if (arg == "--sim-shards") {
      opt.sim_shards = static_cast<std::size_t>(
          std::strtoull(value().c_str(), nullptr, 10));
    } else if (arg == "--ladder-min") {
      opt.ladder_min_set = true;
      opt.ladder_min = static_cast<std::size_t>(
          std::strtoull(value().c_str(), nullptr, 10));
    } else {
      std::cerr << "unknown argument " << arg << "\n";
      std::exit(1);
    }
  }
  return opt;
}

/// One benchmark record. Counter fields are emitted only when set.
struct Record {
  /// Extra fixed-seed counter beyond the headline unit (e.g. the overlay
  /// storm's answers / connect_msgs). `rate` additionally emits
  /// "<name>_per_sec" so secondary throughputs (msgs_per_sec) ride along
  /// without becoming the compare-mode headline.
  struct Extra {
    std::string name;
    std::uint64_t value = 0;
    bool rate = false;
  };

  std::string bench;
  double wall_s = 0.0;
  std::uint64_t ops = 0;            // suite-specific unit (see ops_name)
  std::string ops_name = "ops";
  std::vector<Extra> extras;        // emitted right after the headline unit
  std::uint64_t events = 0;         // kernel events processed
  std::uint64_t frames_delivered = 0;
  std::size_t peak_queue = 0;
  double sim_time_s = 0.0;
  // Execution thread count and pinned shard decomposition of this record.
  // Emitted only when non-default, so every pre-parallel record (and the
  // sequential records bench_guard pins) keeps its exact byte layout; a
  // missing "threads" field means 1. bench.sh --compare refuses to pair
  // records with different thread counts — a 4-thread throughput beating
  // a 1-thread baseline is scaling, not a hot-path win.
  std::size_t threads = 1;
  std::size_t sim_shards = 0;

  std::string to_json(const std::string& label) const {
    char buf[512];
    std::string json = "{\"bench\":\"" + bench + "\",\"label\":\"" + label +
                       "\"";
    std::snprintf(buf, sizeof(buf), ",\"wall_s\":%.6f", wall_s);
    json += buf;
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", ops_name.c_str(),
                  static_cast<unsigned long long>(ops));
    json += buf;
    if (wall_s > 0.0) {
      std::snprintf(buf, sizeof(buf), ",\"%s_per_sec\":%.1f", ops_name.c_str(),
                    static_cast<double>(ops) / wall_s);
      json += buf;
    }
    for (const Extra& extra : extras) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", extra.name.c_str(),
                    static_cast<unsigned long long>(extra.value));
      json += buf;
      if (extra.rate && wall_s > 0.0) {
        std::snprintf(buf, sizeof(buf), ",\"%s_per_sec\":%.1f",
                      extra.name.c_str(),
                      static_cast<double>(extra.value) / wall_s);
        json += buf;
      }
    }
    if (events > 0) {
      std::snprintf(buf, sizeof(buf), ",\"events\":%llu",
                    static_cast<unsigned long long>(events));
      json += buf;
      if (wall_s > 0.0) {
        std::snprintf(buf, sizeof(buf), ",\"events_per_sec\":%.1f",
                      static_cast<double>(events) / wall_s);
        json += buf;
      }
    }
    if (frames_delivered > 0) {
      std::snprintf(buf, sizeof(buf), ",\"frames_delivered\":%llu",
                    static_cast<unsigned long long>(frames_delivered));
      json += buf;
    }
    if (peak_queue > 0) {
      std::snprintf(buf, sizeof(buf), ",\"peak_queue\":%zu", peak_queue);
      json += buf;
    }
    if (sim_time_s > 0.0) {
      std::snprintf(buf, sizeof(buf), ",\"sim_time_s\":%.1f", sim_time_s);
      json += buf;
    }
    if (threads > 1) {
      std::snprintf(buf, sizeof(buf), ",\"threads\":%zu", threads);
      json += buf;
    }
    if (sim_shards > 0) {
      std::snprintf(buf, sizeof(buf), ",\"sim_shards\":%zu", sim_shards);
      json += buf;
    }
    json += "}";
    return json;
  }
};

inline void emit(const Record& rec, const Options& opt) {
  const std::string line = rec.to_json(opt.label);
  std::cout << line << "\n";
  if (!opt.out.empty()) {
    std::ofstream os(opt.out, std::ios::app);
    if (!os) {
      std::cerr << "cannot open " << opt.out << " for append\n";
      std::exit(1);
    }
    os << line << "\n";
  }
}

}  // namespace bench
