// Shared implementation of Figures 7-12: per-node received-message counts,
// nodes decreasingly ordered, one curve per algorithm.
#pragma once

#include "bench_common.hpp"

namespace bench {

enum class CurveMetric { kConnect, kPing, kQuery };

inline const stats::SortedCurve& select_curve(
    const scenario::ExperimentResult& result, CurveMetric metric) {
  switch (metric) {
    case CurveMetric::kConnect: return result.connect_curve;
    case CurveMetric::kPing: return result.ping_curve;
    case CurveMetric::kQuery: return result.query_curve;
  }
  return result.connect_curve;
}

inline const char* metric_name(CurveMetric metric) {
  switch (metric) {
    case CurveMetric::kConnect: return "connect messages";
    case CurveMetric::kPing: return "ping messages";
    case CurveMetric::kQuery: return "query messages";
  }
  return "?";
}

inline const char* metric_expectation(CurveMetric metric) {
  switch (metric) {
    case CurveMetric::kConnect:
      return "paper's expected shape: Basic (indiscriminate broadcast) far "
             "above the rest;\nRandom above Regular/Hybrid because its "
             "long-link probes use larger TTLs.";
    case CurveMetric::kPing:
      return "paper's expected shape: Basic roughly doubles the improved "
             "algorithms\n(both endpoints ping an asymmetric reference) and "
             "is less evenly distributed.";
    case CurveMetric::kQuery:
      return "paper's expected shape: Hybrid concentrates query load on its "
             "masters (steep head);\nRegular/Random spread load evenly "
             "across nodes.";
  }
  return "";
}

inline int run_curve_figure(const char* figure, std::size_t num_nodes,
                            CurveMetric metric, int argc, char** argv) {
  scenario::Parameters params = paper_scenario(num_nodes);
  apply_cli(&params, argc, argv);
  const std::size_t seeds = scenario::bench_seed_count();
  print_header(figure, metric_name(metric), params, seeds);

  std::vector<scenario::ExperimentResult> results;
  for (const auto kind : kAllAlgorithms) {
    results.push_back(run_algorithm(params, kind, seeds));
  }

  std::vector<std::pair<core::AlgorithmKind, const stats::SortedCurve*>> curves;
  for (std::size_t i = 0; i < kAllAlgorithms.size(); ++i) {
    curves.emplace_back(kAllAlgorithms[i], &select_curve(results[i], metric));
  }
  print_sorted_curves(metric_name(metric), curves);

  {
    // Plot-ready export: rank, then mean & ci per algorithm.
    std::vector<std::string> headers{"rank"};
    for (const auto kind : kAllAlgorithms) {
      headers.push_back(std::string(core::algorithm_name(kind)) + "_mean");
      headers.push_back(std::string(core::algorithm_name(kind)) + "_ci95");
    }
    stats::Table csv(std::move(headers));
    std::size_t points = 0;
    for (const auto& [kind, curve] : curves) {
      points = std::max(points, curve->points());
    }
    for (std::size_t i = 0; i < points; ++i) {
      std::vector<double> row{static_cast<double>(i + 1)};
      for (const auto& [kind, curve] : curves) {
        row.push_back(i < curve->points() ? curve->mean_at(i) : 0.0);
        row.push_back(i < curve->points() ? curve->ci95_at(i) : 0.0);
      }
      csv.add_row_values(row);
    }
    std::string name = figure;
    for (char& c : name) {
      if (c == ' ') c = '_';
    }
    maybe_export_csv(csv, name.c_str());
  }

  // Summary: per-node mean and Jain's fairness index per algorithm — the
  // quantified form of the paper's "the more uniform the distribution is,
  // the best performance" argument (§7.4).
  std::cout << "\nmean / fairness of " << metric_name(metric)
            << " received per node:\n";
  for (std::size_t i = 0; i < kAllAlgorithms.size(); ++i) {
    const auto& curve = select_curve(results[i], metric);
    const std::vector<double> means = curve.means();
    double total = 0.0;
    for (const double v : means) total += v;
    std::cout << "  " << core::algorithm_name(kAllAlgorithms[i]) << ": mean "
              << fmt(total / static_cast<double>(
                                 std::max<std::size_t>(1, means.size())))
              << ", Jain fairness "
              << fmt(stats::jain_fairness(means), 3) << "\n";
  }
  std::cout << "\n" << metric_expectation(metric) << "\n";
  return 0;
}

}  // namespace bench
