// Figure 7 (IPDPS'03): connect messages received per node — 50 nodes.
#include "fig_curve_common.hpp"
int main(int argc, char** argv) {
  return bench::run_curve_figure("Figure 7", 50, bench::CurveMetric::kConnect,
                                 argc, argv);
}
