// Theoretical study the paper names as future work (§8: "a theoretical
// study on how the connectivity of nodes influences our metrics and how
// small-world properties could be better used"): a pure Watts-Strogatz
// beta sweep computing C(beta)/C(0) and L(beta)/L(0) — the classic
// small-world transition plot — with the paper's k = MAXNCONN regimes.
#include <iostream>

#include "graph/metrics.hpp"
#include "graph/watts_strogatz.hpp"
#include "sim/rng.hpp"
#include "stats/running_stat.hpp"
#include "stats/table.hpp"

int main() {
  using namespace p2p;
  const std::size_t n = 400;
  const std::size_t k = 6;  // lattice degree (2*MAXNCONN to close triangles)
  const int repetitions = 10;

  std::cout << "== Small-world theory — Watts-Strogatz transition (n=" << n
            << ", k=" << k << ", " << repetitions << " graphs per beta) ==\n\n";

  const graph::Graph lattice = graph::ring_lattice(n, k);
  const double c0 = graph::clustering_coefficient(lattice);
  const double l0 = graph::characteristic_path_length(lattice);
  std::cout << "lattice baseline: C(0) = " << c0 << ", L(0) = " << l0
            << "  (theory: L ~ n/2k = "
            << graph::regular_lattice_path_length(n, k) << ")\n\n";

  stats::Table table({"beta", "C/C0", "L/L0", "sigma"});
  for (const double beta :
       {0.0, 0.001, 0.004, 0.01, 0.04, 0.1, 0.4, 1.0}) {
    stats::RunningStat c_ratio, l_ratio, sigma;
    for (int rep = 0; rep < repetitions; ++rep) {
      sim::RngStream rng(static_cast<std::uint64_t>(rep) * 7919 + 17);
      const graph::Graph g = graph::watts_strogatz(n, k, beta, rng);
      const auto m = graph::analyze(g);
      c_ratio.add(m.clustering / c0);
      l_ratio.add(m.path_length / l0);
      sigma.add(m.smallworld_index);
    }
    char buf[32];
    std::vector<std::string> row;
    std::snprintf(buf, sizeof buf, "%.3f", beta);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", c_ratio.mean());
    row.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.3f", l_ratio.mean());
    row.emplace_back(buf);
    std::snprintf(buf, sizeof buf, "%.2f", sigma.mean());
    row.emplace_back(buf);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nthe small-world window is where L/L0 has collapsed but "
               "C/C0 has not — the\nregime the paper's Random algorithm "
               "tries to enter with its rewired links.\n";
  return 0;
}
