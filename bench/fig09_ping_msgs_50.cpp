// Figure 9 (IPDPS'03): ping messages received per node — 50 nodes.
#include "fig_curve_common.hpp"
int main(int argc, char** argv) {
  return bench::run_curve_figure("Figure 9", 50, bench::CurveMetric::kPing,
                                 argc, argv);
}
